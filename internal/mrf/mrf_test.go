package mrf

import (
	"math"
	"testing"
	"testing/quick"
)

func chainGraph(t *testing.T, labelCounts []int) *Graph {
	t.Helper()
	g, err := NewGraph(labelCounts)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	return g
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(nil); err == nil {
		t.Error("empty graph should be rejected")
	}
	if _, err := NewGraph([]int{2, 0}); err == nil {
		t.Error("node with zero labels should be rejected")
	}
	g, err := NewGraph([]int{2, 3})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	if g.NumNodes() != 2 || g.NumLabels(1) != 3 {
		t.Error("graph shape wrong")
	}
}

func TestUnaryAndLabelNames(t *testing.T) {
	g := chainGraph(t, []int{2, 2})
	if err := g.SetUnary(0, 1, 3.5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddUnary(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := g.Unary(0, 1); got != 4 {
		t.Errorf("Unary = %v, want 4", got)
	}
	if err := g.SetUnary(0, 5, 1); err == nil {
		t.Error("out-of-range label should be rejected")
	}
	if err := g.SetUnary(9, 0, 1); err == nil {
		t.Error("out-of-range node should be rejected")
	}
	if err := g.SetLabelNames(0, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLabelNames(0, []string{"only-one"}); err == nil {
		t.Error("wrong name count should be rejected")
	}
	if err := g.SetLabelNames(7, []string{"a"}); err == nil {
		t.Error("out-of-range node should be rejected")
	}
	if got := g.LabelName(0, 1); got != "b" {
		t.Errorf("LabelName = %q", got)
	}
	if got := g.LabelName(1, 0); got != "" {
		t.Errorf("unnamed label should return empty, got %q", got)
	}
	row := g.UnaryRow(0)
	row[0] = 99
	if g.Unary(0, 0) == 99 {
		t.Error("UnaryRow must return a copy")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := chainGraph(t, []int{2, 3})
	if _, err := g.AddEdge(0, 0, PottsCost(2, 2, 1)); err == nil {
		t.Error("self edge should be rejected")
	}
	if _, err := g.AddEdge(0, 5, PottsCost(2, 2, 1)); err == nil {
		t.Error("out-of-range node should be rejected")
	}
	if _, err := g.AddEdge(0, 1, PottsCost(2, 2, 1)); err == nil {
		t.Error("wrong matrix shape should be rejected")
	}
	if _, err := g.AddEdge(0, 1, [][]float64{{1, 2, 3}, {4, 5}}); err == nil {
		t.Error("ragged matrix should be rejected")
	}
	idx, err := g.AddEdge(0, 1, UniformCost(2, 3, 0.5))
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.NumEdges() != 1 || idx != 0 {
		t.Error("edge bookkeeping wrong")
	}
	if got := g.PairwiseCost(0, 1, 2); got != 0.5 {
		t.Errorf("PairwiseCost = %v", got)
	}
	if got := g.AdjacentEdges(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("AdjacentEdges = %v", got)
	}
}

func TestAddEdgeSharedInternsMatrix(t *testing.T) {
	g := chainGraph(t, []int{2, 2, 2})
	cost := PottsCost(2, 2, 1)
	if _, err := g.AddEdgeShared(0, 1, cost); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdgeShared(1, 2, cost); err != nil {
		t.Fatal(err)
	}
	if g.NumMatrices() != 1 {
		t.Errorf("identical shared matrix should be interned once, got %d", g.NumMatrices())
	}
	if g.PairwiseCost(0, 0, 0) != 1 || g.PairwiseCost(1, 0, 0) != 1 {
		t.Error("interned matrix lost its costs")
	}
	// The matrix is copied on first sight: later caller mutations must not
	// leak into the graph.
	cost[0][0] = 42
	if g.PairwiseCost(0, 0, 0) == 42 {
		t.Error("AddEdgeShared must snapshot the matrix contents")
	}
	if _, err := g.AddEdgeShared(0, 0, cost); err == nil {
		t.Error("self edge should be rejected")
	}
	if _, err := g.AddEdgeShared(0, 1, PottsCost(3, 3, 1)); err == nil {
		t.Error("wrong shape should be rejected")
	}
}

func TestAddEdgeInternsByContent(t *testing.T) {
	g := chainGraph(t, []int{2, 2, 2})
	if _, err := g.AddEdge(0, 1, PottsCost(2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	// A separately-allocated but identical matrix must not grow storage…
	if _, err := g.AddEdge(1, 2, PottsCost(2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if g.NumMatrices() != 1 {
		t.Errorf("content-identical matrices should intern to one, got %d", g.NumMatrices())
	}
	// …while a different matrix must.
	if _, err := g.AddEdge(0, 2, PottsCost(2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if g.NumMatrices() != 2 {
		t.Errorf("distinct matrices must stay distinct, got %d", g.NumMatrices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestEnergy(t *testing.T) {
	g := chainGraph(t, []int{2, 2, 2})
	_ = g.SetUnary(0, 0, 1)
	_ = g.SetUnary(1, 1, 2)
	_ = g.SetUnary(2, 0, 3)
	if _, err := g.AddEdge(0, 1, PottsCost(2, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2, PottsCost(2, 2, 10)); err != nil {
		t.Fatal(err)
	}
	e, err := g.Energy([]int{0, 1, 0})
	if err != nil {
		t.Fatalf("Energy: %v", err)
	}
	if e != 1+2+3 {
		t.Errorf("Energy = %v, want 6", e)
	}
	e, err = g.Energy([]int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if e != 1+3+20 {
		t.Errorf("Energy = %v, want 24", e)
	}
	if _, err := g.Energy([]int{0, 0}); err == nil {
		t.Error("wrong labeling length should be rejected")
	}
	if _, err := g.Energy([]int{0, 0, 5}); err == nil {
		t.Error("out-of-range label should be rejected")
	}
}

func TestTrivialLowerBoundAndGreedy(t *testing.T) {
	g := chainGraph(t, []int{3, 3})
	_ = g.SetUnary(0, 0, 5)
	_ = g.SetUnary(0, 1, 1)
	_ = g.SetUnary(0, 2, 3)
	_ = g.SetUnary(1, 2, -2)
	if _, err := g.AddEdge(0, 1, UniformCost(3, 3, 2)); err != nil {
		t.Fatal(err)
	}
	if lb := g.TrivialLowerBound(); lb != 1+(-2)+2 {
		t.Errorf("TrivialLowerBound = %v, want 1", lb)
	}
	labels := g.GreedyLabeling()
	if labels[0] != 1 || labels[1] != 2 {
		t.Errorf("GreedyLabeling = %v, want [1 2]", labels)
	}
	energy := g.MustEnergy(labels)
	if energy < g.TrivialLowerBound() {
		t.Error("energy below the trivial lower bound")
	}
}

func TestValidateNaN(t *testing.T) {
	g := chainGraph(t, []int{2, 2})
	_ = g.SetUnary(0, 0, math.NaN())
	if err := g.Validate(); err == nil {
		t.Error("NaN unary should fail validation")
	}
	g2 := chainGraph(t, []int{2, 2})
	if _, err := g2.AddEdge(0, 1, [][]float64{{math.NaN(), 0}, {0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err == nil {
		t.Error("NaN pairwise should fail validation")
	}
	g3 := chainGraph(t, []int{2})
	if err := g3.Validate(); err != nil {
		t.Errorf("clean graph should validate: %v", err)
	}
}

func TestPotentials(t *testing.T) {
	potts := PottsCost(3, 3, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 2
			}
			if potts[i][j] != want {
				t.Errorf("Potts[%d][%d] = %v, want %v", i, j, potts[i][j], want)
			}
		}
	}
	sim := SimilarityCost([]string{"a", "b"}, []string{"b"}, func(x, y string) float64 {
		if x == y {
			return 1
		}
		return 0.25
	})
	if sim[0][0] != 0.25 || sim[1][0] != 1 {
		t.Errorf("SimilarityCost = %v", sim)
	}
	scaled := ScaleCost(sim, 2)
	if scaled[1][0] != 2 {
		t.Errorf("ScaleCost = %v", scaled)
	}
	if sim[1][0] != 1 {
		t.Error("ScaleCost must not modify the input")
	}
	tr := Transpose(sim)
	if len(tr) != 1 || len(tr[0]) != 2 || tr[0][1] != 1 {
		t.Errorf("Transpose = %v", tr)
	}
	if Transpose(nil) != nil {
		t.Error("Transpose(nil) should be nil")
	}
	if err := CheckMatrix(sim, 2, 1); err != nil {
		t.Errorf("CheckMatrix: %v", err)
	}
	if err := CheckMatrix(sim, 1, 1); err == nil {
		t.Error("CheckMatrix should reject wrong row count")
	}
	if err := CheckMatrix(sim, 2, 3); err == nil {
		t.Error("CheckMatrix should reject wrong column count")
	}
}

// TestEnergyLowerBoundProperty: for random small graphs and random labelings,
// the energy of any labeling is never below the trivial lower bound.
func TestEnergyLowerBoundProperty(t *testing.T) {
	f := func(seed uint8, picks [6]uint8) bool {
		g := chainGraph(t, []int{2, 3, 2, 4, 3, 2})
		for i := 0; i < g.NumNodes(); i++ {
			for l := 0; l < g.NumLabels(i); l++ {
				_ = g.SetUnary(i, l, float64((int(seed)+i*7+l*3)%11)-3)
			}
		}
		for i := 0; i+1 < g.NumNodes(); i++ {
			cost := UniformCost(g.NumLabels(i), g.NumLabels(i+1), float64((int(seed)+i)%5))
			if _, err := g.AddEdge(i, i+1, cost); err != nil {
				return false
			}
		}
		labels := make([]int, g.NumNodes())
		for i := range labels {
			labels[i] = int(picks[i]) % g.NumLabels(i)
		}
		return g.MustEnergy(labels) >= g.TrivialLowerBound()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

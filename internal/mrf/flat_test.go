package mrf

import (
	"math"
	"math/rand"
	"testing"
)

// referenceGraph is a straightforward nested-slice MRF implementation — the
// seed representation — used as the oracle for the flat storage layer.
type referenceGraph struct {
	unary [][]float64
	edges []struct {
		u, v int
		cost [][]float64
	}
}

func (r *referenceGraph) energy(labels []int) float64 {
	total := 0.0
	for i, l := range labels {
		total += r.unary[i][l]
	}
	for _, e := range r.edges {
		total += e.cost[labels[e.u]][labels[e.v]]
	}
	return total
}

// buildPair constructs the same random MRF in both representations.
func buildPair(t *testing.T, rng *rand.Rand, nodes, labels, extraEdges int) (*Graph, *referenceGraph) {
	t.Helper()
	counts := make([]int, nodes)
	for i := range counts {
		counts[i] = labels
	}
	g, err := NewGraph(counts)
	if err != nil {
		t.Fatal(err)
	}
	ref := &referenceGraph{unary: make([][]float64, nodes)}
	for i := 0; i < nodes; i++ {
		ref.unary[i] = make([]float64, labels)
		for l := 0; l < labels; l++ {
			v := rng.Float64()*4 - 1
			ref.unary[i][l] = v
			if err := g.SetUnary(i, l, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A shared matrix on the ring edges (exercises interning) plus random
	// per-edge matrices on the chords.
	shared := make([][]float64, labels)
	for a := range shared {
		shared[a] = make([]float64, labels)
		for b := range shared[a] {
			shared[a][b] = rng.Float64()
		}
	}
	addBoth := func(u, v int, cost [][]float64, sharedCall bool) {
		var err error
		if sharedCall {
			_, err = g.AddEdgeShared(u, v, cost)
		} else {
			_, err = g.AddEdge(u, v, cost)
		}
		if err != nil {
			t.Fatal(err)
		}
		ref.edges = append(ref.edges, struct {
			u, v int
			cost [][]float64
		}{u, v, cost})
	}
	for i := 0; i < nodes; i++ {
		addBoth(i, (i+1)%nodes, shared, true)
	}
	for e := 0; e < extraEdges; e++ {
		u := rng.Intn(nodes)
		v := rng.Intn(nodes)
		if u == v {
			continue
		}
		cost := make([][]float64, labels)
		for a := range cost {
			cost[a] = make([]float64, labels)
			for b := range cost[a] {
				cost[a][b] = rng.Float64() * 2
			}
		}
		addBoth(u, v, cost, false)
	}
	return g, ref
}

// TestFlatStorageMatchesReferenceEnergy: the flat interned representation
// must report exactly the same energies as the naive nested-slice reference
// on random graphs and random labelings.
func TestFlatStorageMatchesReferenceEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		g, ref := buildPair(t, rng, 12, 4, 8)
		for rep := 0; rep < 20; rep++ {
			labels := make([]int, g.NumNodes())
			for i := range labels {
				labels[i] = rng.Intn(g.NumLabels(i))
			}
			got := g.MustEnergy(labels)
			want := ref.energy(labels)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d: flat energy %v != reference %v (labels %v)", trial, got, want, labels)
			}
		}
		if g.NumMatrices() >= g.NumEdges() {
			t.Errorf("ring edges share one matrix; expected interning, got %d matrices for %d edges",
				g.NumMatrices(), g.NumEdges())
		}
	}
}

// TestEdgeViewAndAccessorsAgree: every access path to the pairwise costs
// (compat Edge view, PairwiseCost, EdgeMat, EdgeMatT) must agree.
func TestEdgeViewAndAccessorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, _ := buildPair(t, rng, 8, 3, 5)
	for idx := 0; idx < g.NumEdges(); idx++ {
		e := g.Edge(idx)
		m := g.EdgeMat(idx)
		mt := g.EdgeMatT(idx)
		u, v := g.EdgeEndpoints(idx)
		if u != e.U || v != e.V {
			t.Fatalf("edge %d endpoints disagree", idx)
		}
		for a := 0; a < g.NumLabels(e.U); a++ {
			for b := 0; b < g.NumLabels(e.V); b++ {
				want := e.Cost[a][b]
				if got := g.PairwiseCost(idx, a, b); got != want {
					t.Fatalf("PairwiseCost(%d,%d,%d) = %v, want %v", idx, a, b, got, want)
				}
				if got := m.At(a, b); got != want {
					t.Fatalf("EdgeMat.At(%d,%d) = %v, want %v", a, b, got, want)
				}
				if got := mt.At(b, a); got != want {
					t.Fatalf("EdgeMatT.At(%d,%d) = %v, want %v", b, a, got, want)
				}
			}
		}
	}
}

// TestIncidentEdgesCSR: the CSR adjacency must list exactly the incident
// edges of every node and survive incremental edge additions.
func TestIncidentEdgesCSR(t *testing.T) {
	g, err := NewGraph([]int{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	add := func(u, v int) int {
		idx, err := g.AddEdge(u, v, PottsCost(2, 2, 1))
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	e01 := add(0, 1)
	e12 := add(1, 2)
	if got := g.IncidentEdges(1); len(got) != 2 || got[0] != e01 || got[1] != e12 {
		t.Fatalf("IncidentEdges(1) = %v", got)
	}
	// Adding an edge after a CSR build must invalidate and rebuild.
	e13 := add(1, 3)
	if got := g.IncidentEdges(1); len(got) != 3 || got[2] != e13 {
		t.Fatalf("IncidentEdges(1) after rebuild = %v", got)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 3 || g.Degree(3) != 1 {
		t.Error("Degree disagrees with CSR adjacency")
	}
	if got := g.AdjacentEdges(2); len(got) != 1 || got[0] != e12 {
		t.Fatalf("AdjacentEdges(2) = %v", got)
	}
}

// TestUnaryViewAliasesStorage: UnaryView must observe SetUnary/AddUnary
// updates without copying, while UnaryRow stays a defensive copy.
func TestUnaryViewAliasesStorage(t *testing.T) {
	g, err := NewGraph([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	view := g.UnaryView(1)
	if len(view) != 3 {
		t.Fatalf("UnaryView length = %d", len(view))
	}
	if err := g.SetUnary(1, 2, 7); err != nil {
		t.Fatal(err)
	}
	if view[2] != 7 {
		t.Error("UnaryView should alias the flat buffer")
	}
	row := g.UnaryRow(1)
	row[2] = -1
	if g.Unary(1, 2) != 7 {
		t.Error("UnaryRow must stay a copy")
	}
}

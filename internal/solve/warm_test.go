package solve_test

import (
	"context"
	"math/rand"
	"testing"

	"netdiversity/internal/mrf"
	"netdiversity/internal/solve"
)

// warmGraph builds a moderately sized random MRF and a cold solution for it.
func warmGraph(t *testing.T, seed int64) (*mrf.Graph, map[string]mrf.Solution) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := randomGraph(t, rng, 60, 4)
	cold := make(map[string]mrf.Solution)
	for _, name := range solve.Names() {
		sol, err := solve.Solve(context.Background(), name, g, solve.Options{MaxIterations: 30, Seed: 7})
		if err != nil {
			t.Fatalf("cold %s: %v", name, err)
		}
		cold[name] = sol
	}
	return g, cold
}

// TestWarmSolveAfterUnaryPerturbation perturbs one node's unary costs and
// re-solves warm with a dirty mask.  The warm solution must (a) be at least
// as good as the stale prior labeling on the new energy, and (b) track the
// quality of a cold re-solve.
func TestWarmSolveAfterUnaryPerturbation(t *testing.T) {
	g, cold := warmGraph(t, 11)
	// Perturb: make node 5's current best label expensive.
	prior := cold["trws"].Labels
	if err := g.SetUnary(5, prior[5], 50); err != nil {
		t.Fatal(err)
	}
	dirty := make([]bool, g.NumNodes())
	dirty[5] = true
	for _, e := range g.IncidentEdges(5) {
		u, v := g.EdgeEndpoints(e)
		dirty[u], dirty[v] = true, true
	}
	for _, name := range solve.Names() {
		priorLabels := append([]int(nil), cold[name].Labels...)
		priorEnergy := g.MustEnergy(priorLabels)
		coldSol, err := solve.Solve(context.Background(), name, g, solve.Options{MaxIterations: 30, Seed: 7})
		if err != nil {
			t.Fatalf("cold re-solve %s: %v", name, err)
		}
		warmSol, err := solve.Solve(context.Background(), name, g, solve.Options{
			MaxIterations: 30,
			Seed:          7,
			InitialLabels: priorLabels,
			DirtyMask:     dirty,
		})
		if err != nil {
			t.Fatalf("warm %s: %v", name, err)
		}
		if got := g.MustEnergy(warmSol.Labels); got != warmSol.Energy {
			t.Errorf("%s: reported energy %v does not match labels (%v)", name, warmSol.Energy, got)
		}
		if warmSol.Energy > priorEnergy+1e-9 {
			t.Errorf("%s: warm energy %v worse than the stale prior %v", name, warmSol.Energy, priorEnergy)
		}
		// The warm solve repairs the perturbation: it must not be far off the
		// cold re-solve (local search can differ slightly on this random
		// instance, but an unrepaired prior would be ~50 worse).
		if warmSol.Energy > coldSol.Energy+5 {
			t.Errorf("%s: warm energy %v far from cold re-solve %v", name, warmSol.Energy, coldSol.Energy)
		}
	}
}

// TestWarmSolveEmptyDirtyMaskKeepsPrior verifies that a warm solve with an
// all-clean mask returns the prior labeling unchanged for the warm-capable
// kernels (nothing is dirty, so nothing may move).
func TestWarmSolveEmptyDirtyMaskKeepsPrior(t *testing.T) {
	g, cold := warmGraph(t, 13)
	dirty := make([]bool, g.NumNodes())
	for _, name := range solve.Names() {
		prior := append([]int(nil), cold[name].Labels...)
		sol, err := solve.Solve(context.Background(), name, g, solve.Options{
			MaxIterations: 10,
			Seed:          7,
			InitialLabels: prior,
			DirtyMask:     dirty,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, l := range sol.Labels {
			if l != prior[i] {
				t.Errorf("%s: node %d moved from %d to %d with an all-clean mask", name, i, prior[i], l)
				break
			}
		}
	}
}

// TestWarmSolveDirtyMaskValidation covers the driver's mask validation.
func TestWarmSolveDirtyMaskValidation(t *testing.T) {
	g, cold := warmGraph(t, 17)
	if _, err := solve.Solve(context.Background(), "trws", g, solve.Options{
		DirtyMask: make([]bool, 3),
	}); err == nil {
		t.Error("short dirty mask accepted")
	}
	if _, err := solve.Solve(context.Background(), "trws", g, solve.Options{
		DirtyMask: make([]bool, g.NumNodes()),
	}); err == nil {
		t.Error("dirty mask without initial labels accepted")
	}
	ok := solve.Options{
		DirtyMask:     make([]bool, g.NumNodes()),
		InitialLabels: cold["trws"].Labels,
	}
	if _, err := solve.Solve(context.Background(), "trws", g, ok); err != nil {
		t.Errorf("valid mask rejected: %v", err)
	}
}

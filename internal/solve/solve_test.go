package solve

import (
	"context"
	"errors"
	"math"
	"testing"

	"netdiversity/internal/mrf"
)

// stubKernel returns a scripted sequence of steps over a fixed labeling.
type stubKernel struct {
	steps   []Step
	initErr error
	inits   int
	calls   int
}

func (s *stubKernel) Init(g *mrf.Graph, opts Options) error {
	s.inits++
	return s.initErr
}

func (s *stubKernel) Step() Step {
	st := s.steps[s.calls]
	s.calls++
	return st
}

func testGraph(t *testing.T) *mrf.Graph {
	t.Helper()
	g, err := mrf.NewGraph([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.SetUnary(0, 1, 1)
	_ = g.SetUnary(1, 1, 1)
	if _, err := g.AddEdge(0, 1, mrf.PottsCost(2, 2, 3)); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunNilAndInvalidGraph(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{}, &stubKernel{}); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph should return ErrNilGraph, got %v", err)
	}
	g, _ := mrf.NewGraph([]int{2})
	_ = g.SetUnary(0, 0, math.NaN())
	if _, err := Run(context.Background(), g, Options{}, &stubKernel{}); err == nil {
		t.Error("invalid graph should be rejected")
	}
}

func TestRunInitError(t *testing.T) {
	g := testGraph(t)
	wantErr := errors.New("boom")
	if _, err := Run(context.Background(), g, Options{}, &stubKernel{initErr: wantErr}); !errors.Is(err, wantErr) {
		t.Errorf("Init error should surface, got %v", err)
	}
}

func TestRunTracksBestAndHistory(t *testing.T) {
	g := testGraph(t)
	// Greedy labeling is [0,0] with energy 3 (Potts clash).  The kernel
	// proposes a worse labeling, then the optimum, then a worse one again;
	// the driver must keep the optimum and a monotone history.
	k := &stubKernel{steps: []Step{
		{Labels: []int{1, 1}},                  // energy 2+3 = 5 -> best stays 3
		{Labels: []int{0, 1}},                  // energy 1 -> new best
		{Labels: []int{1, 1}, Exhausted: true}, // worse again
	}}
	sol, err := Run(context.Background(), g, Options{MaxIterations: 10}, k)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Energy != 1 || sol.Labels[0] != 0 || sol.Labels[1] != 1 {
		t.Errorf("best tracking failed: %+v", sol)
	}
	if sol.Converged {
		t.Error("exhausted kernel should not report convergence")
	}
	if sol.Iterations != 3 || len(sol.EnergyHistory) != 3 {
		t.Errorf("iterations/history = %d/%d, want 3/3", sol.Iterations, len(sol.EnergyHistory))
	}
	for i := 1; i < len(sol.EnergyHistory); i++ {
		if sol.EnergyHistory[i] > sol.EnergyHistory[i-1] {
			t.Errorf("history not monotone: %v", sol.EnergyHistory)
		}
	}
}

func TestRunPatience(t *testing.T) {
	g := testGraph(t)
	same := []int{0, 0}
	var steps []Step
	for i := 0; i < 10; i++ {
		steps = append(steps, Step{Labels: same})
	}
	k := &stubKernel{steps: steps}
	sol, err := Run(context.Background(), g, Options{MaxIterations: 10, Patience: 3}, k)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Error("plateau should trigger patience convergence")
	}
	if sol.Iterations != 3 {
		t.Errorf("patience 3 should stop after 3 non-improving steps, got %d", sol.Iterations)
	}
}

func TestRunNewPhaseResetsPatience(t *testing.T) {
	g := testGraph(t)
	same := []int{0, 0}
	steps := []Step{
		{Labels: same}, {Labels: same},
		{Labels: same, NewPhase: true}, // phase boundary: counter resets
		{Labels: same}, {Labels: same},
		{Labels: []int{0, 1}, FixedPoint: true},
	}
	k := &stubKernel{steps: steps}
	sol, err := Run(context.Background(), g, Options{MaxIterations: 10, Patience: 3}, k)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged || sol.Energy != 1 {
		t.Errorf("fixed point after phase reset should converge at the optimum: %+v", sol)
	}
	if sol.Iterations != len(steps) {
		t.Errorf("phase reset should keep the run alive for all %d steps, got %d", len(steps), sol.Iterations)
	}
}

func TestRunCancellation(t *testing.T) {
	g := testGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k := &stubKernel{steps: []Step{{Labels: []int{0, 0}}}}
	sol, err := Run(ctx, g, Options{}, k)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context should surface, got %v", err)
	}
	if k.calls != 0 {
		t.Error("kernel must not step after cancellation")
	}
	if len(sol.Labels) != g.NumNodes() {
		t.Error("cancelled run should still return the best labeling so far")
	}
}

func TestRunWarmStart(t *testing.T) {
	g := testGraph(t)
	// The warm start is the optimum; a kernel that only produces worse
	// labelings must not displace it.
	k := &stubKernel{steps: []Step{{Labels: []int{1, 1}, Exhausted: true}}}
	sol, err := Run(context.Background(), g, Options{InitialLabels: []int{0, 1}}, k)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Energy != 1 {
		t.Errorf("warm start lost: energy %v, want 1", sol.Energy)
	}
}

func TestRegistry(t *testing.T) {
	Register("test-solver", func() Kernel { return &stubKernel{steps: []Step{{Labels: nil, FixedPoint: true}}} })
	if !Registered("test-solver") {
		t.Fatal("test-solver should be registered")
	}
	found := false
	for _, n := range Names() {
		if n == "test-solver" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v misses test-solver", Names())
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown solver should error")
	}
	sol, err := Solve(context.Background(), "test-solver", testGraph(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Error("fixed-point kernel should converge")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	Register("test-solver", func() Kernel { return &stubKernel{} })
}

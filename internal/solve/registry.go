package solve

import (
	"fmt"
	"sort"
	"sync"
)

// Factory creates a fresh kernel instance (kernels are stateful and
// single-use; a new one is built per Solve call).
type Factory func() Kernel

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register adds a named kernel factory to the registry.  Solver packages
// call it from init(); registering the same name twice panics, as that is
// always a programming error.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("solve: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solve: solver %q registered twice", name))
	}
	registry[name] = f
}

// New instantiates the named kernel.
func New(name string) (Kernel, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solve: unknown solver %q (registered: %v)", name, Names())
	}
	return f(), nil
}

// Registered reports whether a solver name is known.
func Registered(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names lists the registered solver names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

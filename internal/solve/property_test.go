package solve_test

import (
	"context"
	"math/rand"
	"testing"

	"netdiversity/internal/mrf"
	"netdiversity/internal/solve"

	// Register every solver kernel with the registry under test.
	_ "netdiversity/internal/bp"
	_ "netdiversity/internal/icm"
	_ "netdiversity/internal/trws"
)

// randomGraph builds a small random MRF: a ring plus chords with a shared
// matrix on the ring (exercising interning) and random matrices on the
// chords.
func randomGraph(t *testing.T, rng *rand.Rand, nodes, labels int) *mrf.Graph {
	t.Helper()
	counts := make([]int, nodes)
	for i := range counts {
		counts[i] = labels
	}
	g, err := mrf.NewGraph(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		for l := 0; l < labels; l++ {
			if err := g.SetUnary(i, l, rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	shared := make([][]float64, labels)
	for a := range shared {
		shared[a] = make([]float64, labels)
		for b := range shared[a] {
			shared[a][b] = rng.Float64() * 2
		}
	}
	for i := 0; i < nodes; i++ {
		if _, err := g.AddEdgeShared(i, (i+1)%nodes, shared); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < nodes/3; c++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u == v {
			continue
		}
		cost := make([][]float64, labels)
		for a := range cost {
			cost[a] = make([]float64, labels)
			for b := range cost[a] {
				cost[a][b] = rng.Float64() * 2
			}
		}
		if _, err := g.AddEdge(u, v, cost); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// solverNames returns the four production solvers, failing loudly if the
// registry is missing one (e.g. a lost blank import).
func solverNames(t *testing.T) []string {
	t.Helper()
	want := []string{"anneal", "bp", "icm", "trws"}
	for _, name := range want {
		if !solve.Registered(name) {
			t.Fatalf("solver %q not registered; registry has %v", name, solve.Names())
		}
	}
	return want
}

// TestEverySolverBeatsGreedy: on random graphs, every registered solver's
// energy is never worse than the greedy-unary labeling (the driver's
// best-tracking guarantees this) and never below the trivial lower bound.
func TestEverySolverBeatsGreedy(t *testing.T) {
	names := solverNames(t)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(t, rng, 10, 3)
		greedy := g.MustEnergy(g.GreedyLabeling())
		for _, name := range names {
			sol, err := solve.Solve(context.Background(), name, g, solve.Options{MaxIterations: 20, Seed: 7})
			if err != nil {
				t.Fatalf("trial %d solver %s: %v", trial, name, err)
			}
			if sol.Energy > greedy+1e-9 {
				t.Errorf("trial %d: %s energy %v worse than greedy %v", trial, name, sol.Energy, greedy)
			}
			if sol.Energy < sol.LowerBound-1e-9 {
				t.Errorf("trial %d: %s energy %v below lower bound %v", trial, name, sol.Energy, sol.LowerBound)
			}
			if got := g.MustEnergy(sol.Labels); got != sol.Energy {
				t.Errorf("trial %d: %s reported energy %v but labels evaluate to %v", trial, name, sol.Energy, got)
			}
		}
	}
}

// TestEverySolverHistoryMonotone: the shared driver's best-energy history is
// non-increasing for every solver and has one entry per iteration.
func TestEverySolverHistoryMonotone(t *testing.T) {
	names := solverNames(t)
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(t, rng, 12, 3)
	for _, name := range names {
		sol, err := solve.Solve(context.Background(), name, g, solve.Options{MaxIterations: 15, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sol.EnergyHistory) != sol.Iterations {
			t.Errorf("%s: history length %d != iterations %d", name, len(sol.EnergyHistory), sol.Iterations)
		}
		for i := 1; i < len(sol.EnergyHistory); i++ {
			if sol.EnergyHistory[i] > sol.EnergyHistory[i-1]+1e-12 {
				t.Errorf("%s: history not monotone at %d: %v", name, i, sol.EnergyHistory)
			}
		}
	}
}

// TestEverySolverHonoursWarmStart: given an optimal warm start, no solver
// may return anything worse.
func TestEverySolverHonoursWarmStart(t *testing.T) {
	names := solverNames(t)
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(t, rng, 8, 2)
		// Find a strong labeling with one solver, then feed it to the others.
		ref, err := solve.Solve(context.Background(), "trws", g, solve.Options{MaxIterations: 30})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			sol, err := solve.Solve(context.Background(), name, g, solve.Options{
				MaxIterations: 5,
				Seed:          1,
				InitialLabels: ref.Labels,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if sol.Energy > ref.Energy+1e-9 {
				t.Errorf("trial %d: %s with warm start %v returned worse energy %v", trial, name, ref.Energy, sol.Energy)
			}
		}
	}
}

// TestEverySolverCancellable: a pre-cancelled context surfaces immediately
// from every solver with a usable best-so-far labeling.
func TestEverySolverCancellable(t *testing.T) {
	names := solverNames(t)
	rng := rand.New(rand.NewSource(61))
	g := randomGraph(t, rng, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range names {
		sol, err := solve.Solve(ctx, name, g, solve.Options{})
		if err == nil {
			t.Errorf("%s: cancelled context should surface an error", name)
		}
		if len(sol.Labels) != g.NumNodes() {
			t.Errorf("%s: cancelled solve should still return a labeling", name)
		}
	}
}

package solve

import "netdiversity/internal/mrf"

// HalfEdge is one directed view of an undirected MRF edge as seen from a
// node: the edge index, the opposite endpoint, and whether the node is the
// edge's U endpoint (i.e. indexes the cost matrix rows).
type HalfEdge struct {
	Edge  int32
	Other int32
	IsU   bool
}

// Incidence is a CSR half-edge incidence structure shared by the solver
// kernels: Of(i) lists node i's half edges in edge-index order.
type Incidence struct {
	inc []HalfEdge
	off []int
}

// BuildIncidence constructs the incidence structure for a graph and touches
// the graph's lazy caches (adjacency CSR, transposed matrices) so that
// kernels may read them from multiple goroutines afterwards.  Call it from
// Kernel.Init, which the driver guarantees runs single-threaded.
func BuildIncidence(g *mrf.Graph) Incidence {
	n := g.NumNodes()
	off := make([]int, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + len(g.IncidentEdges(i))
	}
	inc := make([]HalfEdge, off[n])
	for i := 0; i < n; i++ {
		pos := off[i]
		for _, e := range g.IncidentEdges(i) {
			u, v := g.EdgeEndpoints(e)
			he := HalfEdge{Edge: int32(e), Other: int32(v), IsU: true}
			if v == i {
				he.Other = int32(u)
				he.IsU = false
			}
			inc[pos] = he
			pos++
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		g.EdgeMatT(e)
	}
	return Incidence{inc: inc, off: off}
}

// Of returns the half edges of a node as a read-only view.
func (in *Incidence) Of(node int) []HalfEdge {
	return in.inc[in.off[node]:in.off[node+1]:in.off[node+1]]
}

// MessageOffsets lays out flat per-endpoint message storage for every edge:
// intoU[e] is the offset of the message into edge e's U endpoint, intoV[e]
// the offset of the message into its V endpoint, and total the buffer length
// (message sizes are the endpoints' label counts).  Both message-passing
// kernels share this layout.
func MessageOffsets(g *mrf.Graph) (intoU, intoV []int, total int) {
	nEdges := g.NumEdges()
	intoU = make([]int, nEdges)
	intoV = make([]int, nEdges)
	for e := 0; e < nEdges; e++ {
		u, v := g.EdgeEndpoints(e)
		intoU[e] = total
		total += g.NumLabels(u)
		intoV[e] = total
		total += g.NumLabels(v)
	}
	return intoU, intoV, total
}

// Package solve defines the unified solver layer for the MRF minimisation
// problem: a Kernel interface that each algorithm (TRW-S, loopy BP, ICM,
// simulated annealing) implements with just its message/update rule, a shared
// driver that owns everything the seed solvers used to duplicate —
// best-labeling tracking, tolerance/patience convergence, energy history and
// context cancellation — and a registry mapping solver names to kernel
// factories so that orchestration layers (core.Optimizer, the cmd tools) can
// run any solver uniformly.
package solve

import (
	"context"
	"errors"
	"fmt"

	"netdiversity/internal/mrf"
)

// ErrNilGraph is returned when Solve/Run is called with a nil graph.  Solver
// packages alias this error so errors.Is works across the wrappers.
var ErrNilGraph = errors.New("solve: nil graph")

// Options is the unified solver configuration.  Individual kernels consume
// the subset that applies to them and may override defaults through the
// Defaults hook.
type Options struct {
	// MaxIterations bounds the number of kernel steps per phase (sweeps for
	// the local-search solvers, full passes for the message-passing ones).
	// Default 100.
	MaxIterations int
	// Tolerance is the minimum energy improvement that counts as progress
	// for the driver's patience logic; message-passing kernels also use it
	// for their own fixed-point test.  Default 1e-6.
	Tolerance float64
	// Patience is the number of non-improving iterations tolerated before
	// the driver declares convergence.  Default 5.  Kernels that manage
	// their own stopping rule (BP message deltas, ICM local optima) disable
	// it by defaulting it to MaxIterations.
	Patience int
	// Workers sets the number of goroutines a kernel may use for one step.
	// Values <= 1 run serially.  Kernels must stay deterministic for any
	// worker count.
	Workers int
	// Seed drives randomised kernels (restarts, annealing).
	Seed int64
	// Damping in [0,1) mixes new messages with previous ones (BP).
	Damping float64
	// Restarts re-runs local search from random initialisations (ICM/anneal).
	Restarts int
	// Annealing enables the simulated-annealing acceptance rule (ICM).
	Annealing bool
	// InitialTemperature and Cooling control the annealing schedule.
	InitialTemperature float64
	Cooling            float64
	// InitialLabels optionally warm-starts the solver: the driver seeds its
	// best labeling with it and local-search kernels descend from it.
	InitialLabels []int
	// Checkpoint, when non-nil, is called by the driver between kernel steps
	// (after the context check).  It turns one long solve into a sequence of
	// schedulable units: the serving plane's solve scheduler uses it to yield
	// the worker slot between iterations when higher-priority work is queued.
	// A non-nil error aborts the solve like a cancelled context — the driver
	// returns the best solution found so far together with the error.
	Checkpoint func(ctx context.Context) error
	// DirtyMask marks the nodes whose neighbourhood changed since
	// InitialLabels was a (near-)optimal labeling.  When set alongside
	// InitialLabels and the kernel implements WarmKernel, the driver hands
	// both to the kernel after Init: the kernel then schedules dirty nodes
	// first and keeps untouched regions frozen at the prior labeling, so a
	// re-solve after a small delta converges in O(dirty) work per sweep
	// instead of O(nodes).  Kernels without warm support simply run a full
	// warm-started solve.  nil means a cold/full solve.
	DirtyMask []bool
}

// WithDefaults fills the zero values shared by every kernel.
func (o Options) WithDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
	if o.Patience <= 0 {
		o.Patience = 5
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	if o.InitialTemperature <= 0 {
		o.InitialTemperature = 1.0
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.92
	}
	return o
}

// Step is what a kernel reports back to the driver after one iteration.
type Step struct {
	// Labels is the candidate labeling decoded this step; the driver scores
	// it and keeps the best seen.  A nil Labels skips scoring.
	Labels []int
	// FixedPoint signals the kernel's own convergence criterion (message
	// deltas below tolerance, a sweep with no changes on the last restart).
	// The driver stops and marks the solution converged.
	FixedPoint bool
	// NewPhase signals a phase boundary (e.g. a fresh random restart); the
	// driver resets its patience counter so a phase is not cut short by the
	// previous phase's plateau.
	NewPhase bool
	// Exhausted signals that the kernel has no more work (iteration budget
	// spent); the driver stops without marking convergence.
	Exhausted bool
}

// Kernel is the pure algorithmic core of one MRF solver.  Init is called
// once, single-threaded, and must touch any lazily-built graph caches it
// will read during Step (incident lists, transposed matrices) so that Step
// may fan out across goroutines safely.
type Kernel interface {
	// Init validates kernel-specific options and prepares the workspace.
	Init(g *mrf.Graph, opts Options) error
	// Step advances the algorithm by one iteration.
	Step() Step
}

// OptionDefaulter lets a kernel adjust the unified defaults before the
// driver applies them (e.g. BP disables energy patience because its stopping
// rule is the message fixed point; ICM bounds sweeps per restart).
type OptionDefaulter interface {
	Defaults(opts Options) Options
}

// WarmKernel is the optional capability a kernel implements to support
// incremental re-solves: WarmStart is called once after Init with a prior
// labeling and the dirty mask (true = this node's neighbourhood changed).
// The kernel must then treat unmarked nodes as frozen at the prior labeling
// until one of their neighbours changes label (the dirty frontier may grow),
// and its decoded labelings must keep the prior label for every node it has
// not reconsidered.
type WarmKernel interface {
	Kernel
	WarmStart(labels []int, dirty []bool) error
}

// Run drives a kernel to completion: it owns validation, warm starts,
// best-labeling tracking, the tolerance/patience convergence rule, the
// energy history and context cancellation.  On cancellation it returns the
// best solution found so far together with the context error.
func Run(ctx context.Context, g *mrf.Graph, opts Options, k Kernel) (mrf.Solution, error) {
	if g == nil {
		return mrf.Solution{}, ErrNilGraph
	}
	if err := g.Validate(); err != nil {
		return mrf.Solution{}, err
	}
	if d, ok := k.(OptionDefaulter); ok {
		opts = d.Defaults(opts)
	}
	opts = opts.WithDefaults()
	if err := k.Init(g, opts); err != nil {
		return mrf.Solution{}, err
	}
	warmed := false
	if opts.DirtyMask != nil {
		if len(opts.DirtyMask) != g.NumNodes() {
			return mrf.Solution{}, fmt.Errorf("solve: dirty mask has %d entries, want %d", len(opts.DirtyMask), g.NumNodes())
		}
		if len(opts.InitialLabels) != g.NumNodes() {
			return mrf.Solution{}, fmt.Errorf("solve: dirty mask requires initial labels for all %d nodes", g.NumNodes())
		}
		if wk, ok := k.(WarmKernel); ok {
			if err := wk.WarmStart(opts.InitialLabels, opts.DirtyMask); err != nil {
				return mrf.Solution{}, err
			}
			warmed = true
		}
	}

	var best []int
	if warmed {
		// Incremental mode: the prior labeling is the only admissible seed —
		// falling back to the greedy-unary baseline could return a labeling
		// that moves frozen (clean) regions, breaking the WarmKernel
		// contract that untouched nodes keep their prior label.
		best = append([]int(nil), opts.InitialLabels...)
	} else {
		best = g.GreedyLabeling()
	}
	bestEnergy := g.MustEnergy(best)
	// Patience tracks the kernel's progress against the starting baseline,
	// not against a stronger warm start: a strong warm start must not starve
	// a message-passing kernel of its first Patience iterations while its
	// decoded energy is still catching up from above.
	kernelBest := bestEnergy
	if !warmed && len(opts.InitialLabels) == g.NumNodes() {
		if e, err := g.Energy(opts.InitialLabels); err == nil && e < bestEnergy {
			copy(best, opts.InitialLabels)
			bestEnergy = e
		}
	}

	history := make([]float64, 0, opts.MaxIterations)
	noImprove := 0
	iterations := 0
	converged := false
	// Hard cap: kernels signal Exhausted themselves; this only guards
	// against a kernel that never does.
	maxSteps := opts.MaxIterations * opts.Restarts

	for iterations < maxSteps {
		if err := ctx.Err(); err != nil {
			return pack(g, best, bestEnergy, history, iterations, false), err
		}
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint(ctx); err != nil {
				return pack(g, best, bestEnergy, history, iterations, false), err
			}
		}
		st := k.Step()
		iterations++
		if st.Labels != nil {
			e := g.MustEnergy(st.Labels)
			if e < kernelBest-opts.Tolerance {
				kernelBest = e
				noImprove = 0
			} else {
				noImprove++
			}
			if e < bestEnergy {
				bestEnergy = e
				copy(best, st.Labels)
			}
		}
		history = append(history, bestEnergy)
		if st.NewPhase {
			noImprove = 0
		}
		if st.FixedPoint {
			converged = true
			break
		}
		if st.Exhausted {
			break
		}
		if noImprove >= opts.Patience {
			converged = true
			break
		}
	}
	return pack(g, best, bestEnergy, history, iterations, converged), nil
}

func pack(g *mrf.Graph, labels []int, energy float64, history []float64, iters int, converged bool) mrf.Solution {
	return mrf.Solution{
		Labels:        append([]int(nil), labels...),
		Energy:        energy,
		LowerBound:    g.TrivialLowerBound(),
		Iterations:    iters,
		Converged:     converged,
		EnergyHistory: append([]float64(nil), history...),
	}
}

// Solve instantiates the named kernel from the registry and runs it.  Errors
// pass through unwrapped: kernels already prefix their own option errors
// with the solver name, and graph/context errors carry their origin.
func Solve(ctx context.Context, name string, g *mrf.Graph, opts Options) (mrf.Solution, error) {
	k, err := New(name)
	if err != nil {
		return mrf.Solution{}, err
	}
	return Run(ctx, g, opts, k)
}

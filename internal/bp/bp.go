// Package bp implements loopy min-sum belief propagation, the classic
// alternative the paper compares TRW-S against conceptually (Section V-C):
// BP applies to the same class of energies but is not guaranteed to converge
// on loopy graphs.  It serves as a baseline solver for the ablation
// experiments.  Only the synchronous message-update kernel lives here; the
// best-labeling tracking, history and cancellation live in the shared solve
// driver.
package bp

import (
	"context"
	"fmt"
	"math"

	"netdiversity/internal/mrf"
	"netdiversity/internal/solve"
)

func init() {
	solve.Register("bp", func() solve.Kernel { return &Kernel{} })
}

// Options configures the solver (thin compatibility wrapper over the unified
// solve.Options).
type Options struct {
	// MaxIterations bounds the number of synchronous message update rounds.
	// Default 100.
	MaxIterations int
	// Damping in [0,1) mixes the new message with the previous one
	// (m = (1-d)·new + d·old), which helps convergence on loopy graphs.
	// Default 0.5.
	Damping float64
	// Tolerance declares convergence when the largest message change in a
	// round falls below it.  Default 1e-4.
	Tolerance float64
}

// ErrNilGraph is returned when Solve is called with a nil graph.
var ErrNilGraph = solve.ErrNilGraph

// Solve runs loopy min-sum BP and returns the decoded labeling.
func Solve(g *mrf.Graph, opts Options) (mrf.Solution, error) {
	return SolveContext(context.Background(), g, opts)
}

// SolveContext is Solve with cancellation between rounds.
func SolveContext(ctx context.Context, g *mrf.Graph, opts Options) (mrf.Solution, error) {
	return solve.Run(ctx, g, solve.Options{
		MaxIterations: opts.MaxIterations,
		Damping:       opts.Damping,
		Tolerance:     opts.Tolerance,
	}, &Kernel{})
}

// Kernel is the synchronous loopy-BP kernel.
type Kernel struct {
	g    *mrf.Graph
	opts solve.Options

	n      int
	counts []int
	inc    solve.Incidence
	// Double-buffered flat message storage indexed like trws: slot msgU[e]
	// holds the message into the U endpoint, msgV[e] into the V endpoint.
	msg  []float64
	next []float64
	msgU []int
	msgV []int

	aggBuf []float64
	iter   int

	// Warm-start state (see WarmStart): message rounds run only over the
	// active region, conditioned on the prior labels of the inactive
	// boundary; the active set grows where the decode diverges from the
	// prior.
	warm   bool
	prior  []int
	active []bool
}

// Defaults disables the driver's energy-patience rule: BP's stopping
// criterion is its own message fixed point, as in the seed implementation,
// and it applies its damping/tolerance defaults.
func (k *Kernel) Defaults(opts solve.Options) solve.Options {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 100
	}
	opts.Patience = opts.MaxIterations
	if opts.Damping == 0 {
		opts.Damping = 0.5
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-4
	}
	return opts
}

// Init validates the damping factor and builds the flat workspace.
func (k *Kernel) Init(g *mrf.Graph, opts solve.Options) error {
	if opts.Damping < 0 || opts.Damping >= 1 {
		return fmt.Errorf("bp: damping %v out of range [0,1)", opts.Damping)
	}
	k.g = g
	k.opts = opts
	k.n = g.NumNodes()
	k.iter = 0
	k.counts = make([]int, k.n)
	for i := 0; i < k.n; i++ {
		k.counts[i] = g.NumLabels(i)
	}

	var total int
	k.msgU, k.msgV, total = solve.MessageOffsets(g)
	k.msg = make([]float64, total)
	k.next = make([]float64, total)
	k.inc = solve.BuildIncidence(g)
	k.aggBuf = make([]float64, g.MaxLabels())
	k.warm = false
	k.prior = nil
	k.active = nil
	return nil
}

// WarmStart switches the kernel to incremental mode (solve.WarmKernel):
// message rounds visit only active nodes, inactive neighbours contribute
// their pairwise cost row at the frozen prior label instead of a message,
// and decoded labelings keep the prior label outside the active region.
func (k *Kernel) WarmStart(labels []int, dirty []bool) error {
	if len(labels) != k.n || len(dirty) != k.n {
		return fmt.Errorf("bp: warm start needs %d labels and dirty flags", k.n)
	}
	k.prior = append([]int(nil), labels...)
	k.active = append([]bool(nil), dirty...)
	k.warm = true
	return nil
}

// boundaryRow returns the pairwise cost toward the half edge's node for the
// opposite endpoint frozen at its prior label.
func (k *Kernel) boundaryRow(he solve.HalfEdge) []float64 {
	fixed := k.prior[he.Other]
	if he.IsU {
		return k.g.EdgeMatT(int(he.Edge)).Row(fixed)
	}
	return k.g.EdgeMat(int(he.Edge)).Row(fixed)
}

func (k *Kernel) incident(node int) []solve.HalfEdge {
	return k.inc.Of(node)
}

func (k *Kernel) slot(buf []float64, e int, intoU bool) []float64 {
	u, v := k.g.EdgeEndpoints(e)
	if intoU {
		return buf[k.msgU[e] : k.msgU[e]+k.counts[u]]
	}
	return buf[k.msgV[e] : k.msgV[e]+k.counts[v]]
}

// inMessage returns the previous-round message arriving at the half edge's
// node.
func (k *Kernel) inMessage(he solve.HalfEdge) []float64 {
	return k.slot(k.msg, int(he.Edge), he.IsU)
}

// Step performs one synchronous round: every directed message is recomputed
// from the previous round's messages, then a labeling is decoded from the
// beliefs.
func (k *Kernel) Step() solve.Step {
	maxDelta := 0.0
	agg := k.aggBuf
	for node := 0; node < k.n; node++ {
		if k.warm && !k.active[node] {
			continue
		}
		kn := k.counts[node]
		copy(agg, k.g.UnaryView(node))
		for _, he := range k.incident(node) {
			if k.warm && !k.active[he.Other] {
				row := k.boundaryRow(he)
				for x := 0; x < kn; x++ {
					agg[x] += row[x]
				}
				continue
			}
			in := k.inMessage(he)
			for x := 0; x < kn; x++ {
				agg[x] += in[x]
			}
		}
		for _, he := range k.incident(node) {
			if k.warm && !k.active[he.Other] {
				continue // frozen boundary: no messages flow toward it
			}
			in := k.inMessage(he)
			out := k.slot(k.next, int(he.Edge), !he.IsU)
			var mat *mrf.Matrix
			if he.IsU {
				mat = k.g.EdgeMat(int(he.Edge))
			} else {
				mat = k.g.EdgeMatT(int(he.Edge))
			}
			kOther := len(out)
			if kOther == 4 {
				// Small-K fast path (see the twin in trws.updateMessage): the
				// four running minima stay in registers and the reslice
				// eliminates the row bounds checks.
				o0, o1, o2, o3 := math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)
				for x := 0; x < kn; x++ {
					base := agg[x] - in[x]
					row := mat.Row(x)[:4:4]
					if v := base + row[0]; v < o0 {
						o0 = v
					}
					if v := base + row[1]; v < o1 {
						o1 = v
					}
					if v := base + row[2]; v < o2 {
						o2 = v
					}
					if v := base + row[3]; v < o3 {
						o3 = v
					}
				}
				out[0], out[1], out[2], out[3] = o0, o1, o2, o3
			} else {
				for xo := 0; xo < kOther; xo++ {
					out[xo] = math.Inf(1)
				}
				for x := 0; x < kn; x++ {
					base := agg[x] - in[x]
					row := mat.Row(x)[:kOther:kOther]
					for xo := 0; xo < kOther; xo++ {
						if v := base + row[xo]; v < out[xo] {
							out[xo] = v
						}
					}
				}
			}
			// Normalise and damp against the previous round's message.
			m := out[0]
			for _, v := range out[1:] {
				if v < m {
					m = v
				}
			}
			old := k.slot(k.msg, int(he.Edge), !he.IsU)
			for i := range out {
				out[i] -= m
				out[i] = (1-k.opts.Damping)*out[i] + k.opts.Damping*old[i]
				if d := math.Abs(out[i] - old[i]); d > maxDelta {
					maxDelta = d
				}
			}
		}
	}
	k.msg, k.next = k.next, k.msg
	k.iter++
	labels := k.decode()
	if k.warm {
		// Grow the dirty frontier where the decode moved off the prior
		// labeling, then absorb the decode as the new conditioning boundary.
		for node := 0; node < k.n; node++ {
			if k.active[node] && labels[node] != k.prior[node] {
				for _, he := range k.incident(node) {
					k.active[he.Other] = true
				}
			}
		}
		copy(k.prior, labels)
	}
	return solve.Step{
		Labels:     labels,
		FixedPoint: maxDelta < k.opts.Tolerance,
		Exhausted:  k.iter >= k.opts.MaxIterations,
	}
}

// decode picks the label minimising each node's belief.  In warm mode
// inactive nodes keep their prior label and active beliefs condition on the
// frozen boundary.
func (k *Kernel) decode() []int {
	labels := make([]int, k.n)
	if k.warm {
		copy(labels, k.prior)
	}
	belief := k.aggBuf
	for node := 0; node < k.n; node++ {
		if k.warm && !k.active[node] {
			continue
		}
		kn := k.counts[node]
		copy(belief, k.g.UnaryView(node))
		for _, he := range k.incident(node) {
			if k.warm && !k.active[he.Other] {
				row := k.boundaryRow(he)
				for x := 0; x < kn; x++ {
					belief[x] += row[x]
				}
				continue
			}
			in := k.inMessage(he)
			for x := 0; x < kn; x++ {
				belief[x] += in[x]
			}
		}
		best, bestV := 0, math.Inf(1)
		for x := 0; x < kn; x++ {
			if belief[x] < bestV {
				best, bestV = x, belief[x]
			}
		}
		labels[node] = best
	}
	return labels
}

// Package bp implements loopy min-sum belief propagation, the classic
// alternative the paper compares TRW-S against conceptually (Section V-C):
// BP applies to the same class of energies but is not guaranteed to converge
// on loopy graphs.  It serves as a baseline solver for the ablation
// experiments.
package bp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"netdiversity/internal/mrf"
)

// Options configures the solver.
type Options struct {
	// MaxIterations bounds the number of synchronous message update rounds.
	// Default 100.
	MaxIterations int
	// Damping in [0,1) mixes the new message with the previous one
	// (m = (1-d)·new + d·old), which helps convergence on loopy graphs.
	// Default 0.5.
	Damping float64
	// Tolerance declares convergence when the largest message change in a
	// round falls below it.  Default 1e-4.
	Tolerance float64
}

func (o Options) withDefaults() (Options, error) {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Damping == 0 {
		o.Damping = 0.5
	}
	if o.Damping < 0 || o.Damping >= 1 {
		return o, fmt.Errorf("bp: damping %v out of range [0,1)", o.Damping)
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	return o, nil
}

// ErrNilGraph is returned when Solve is called with a nil graph.
var ErrNilGraph = errors.New("bp: nil graph")

// Solve runs loopy min-sum BP and returns the decoded labeling.
func Solve(g *mrf.Graph, opts Options) (mrf.Solution, error) {
	return SolveContext(context.Background(), g, opts)
}

// SolveContext is Solve with cancellation between rounds.
func SolveContext(ctx context.Context, g *mrf.Graph, opts Options) (mrf.Solution, error) {
	if g == nil {
		return mrf.Solution{}, ErrNilGraph
	}
	if err := g.Validate(); err != nil {
		return mrf.Solution{}, fmt.Errorf("bp: %w", err)
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return mrf.Solution{}, err
	}

	n := g.NumNodes()
	nEdges := g.NumEdges()
	// msg[e][0]: message into U endpoint; msg[e][1]: message into V endpoint.
	msg := make([][2][]float64, nEdges)
	next := make([][2][]float64, nEdges)
	for e := 0; e < nEdges; e++ {
		edge := g.Edge(e)
		msg[e][0] = make([]float64, g.NumLabels(edge.U))
		msg[e][1] = make([]float64, g.NumLabels(edge.V))
		next[e][0] = make([]float64, g.NumLabels(edge.U))
		next[e][1] = make([]float64, g.NumLabels(edge.V))
	}

	type halfEdge struct {
		edge  int
		isU   bool
		other int
	}
	incident := make([][]halfEdge, n)
	for e := 0; e < nEdges; e++ {
		edge := g.Edge(e)
		incident[edge.U] = append(incident[edge.U], halfEdge{edge: e, isU: true, other: edge.V})
		incident[edge.V] = append(incident[edge.V], halfEdge{edge: e, isU: false, other: edge.U})
	}
	inMsg := func(m [][2][]float64, he halfEdge) []float64 {
		if he.isU {
			return m[he.edge][0]
		}
		return m[he.edge][1]
	}

	decode := func() []int {
		labels := make([]int, n)
		for node := 0; node < n; node++ {
			k := g.NumLabels(node)
			belief := g.UnaryRow(node)
			for _, he := range incident[node] {
				in := inMsg(msg, he)
				for x := 0; x < k; x++ {
					belief[x] += in[x]
				}
			}
			best, bestV := 0, math.Inf(1)
			for x := 0; x < k; x++ {
				if belief[x] < bestV {
					best, bestV = x, belief[x]
				}
			}
			labels[node] = best
		}
		return labels
	}

	best := g.GreedyLabeling()
	bestEnergy := g.MustEnergy(best)
	history := make([]float64, 0, opts.MaxIterations)
	converged := false
	iterations := 0

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return solution(g, best, bestEnergy, history, iterations, false), err
		}
		maxDelta := 0.0
		// Synchronous update: every directed message recomputed from the
		// previous round's messages.
		for node := 0; node < n; node++ {
			k := g.NumLabels(node)
			agg := g.UnaryRow(node)
			for _, he := range incident[node] {
				in := inMsg(msg, he)
				for x := 0; x < k; x++ {
					agg[x] += in[x]
				}
			}
			for _, he := range incident[node] {
				in := inMsg(msg, he)
				edge := g.Edge(he.edge)
				var out []float64
				if he.isU {
					out = next[he.edge][1]
				} else {
					out = next[he.edge][0]
				}
				kOther := len(out)
				for xo := 0; xo < kOther; xo++ {
					out[xo] = math.Inf(1)
				}
				for x := 0; x < k; x++ {
					base := agg[x] - in[x]
					for xo := 0; xo < kOther; xo++ {
						var c float64
						if he.isU {
							c = edge.Cost[x][xo]
						} else {
							c = edge.Cost[xo][x]
						}
						if v := base + c; v < out[xo] {
							out[xo] = v
						}
					}
				}
				// Normalise and damp.
				m := out[0]
				for _, v := range out[1:] {
					if v < m {
						m = v
					}
				}
				var old []float64
				if he.isU {
					old = msg[he.edge][1]
				} else {
					old = msg[he.edge][0]
				}
				for i := range out {
					out[i] -= m
					out[i] = (1-opts.Damping)*out[i] + opts.Damping*old[i]
					if d := math.Abs(out[i] - old[i]); d > maxDelta {
						maxDelta = d
					}
				}
			}
		}
		msg, next = next, msg
		iterations = iter + 1

		labels := decode()
		energy := g.MustEnergy(labels)
		if energy < bestEnergy {
			bestEnergy = energy
			copy(best, labels)
		}
		history = append(history, bestEnergy)
		if maxDelta < opts.Tolerance {
			converged = true
			break
		}
	}
	return solution(g, best, bestEnergy, history, iterations, converged), nil
}

func solution(g *mrf.Graph, labels []int, energy float64, history []float64, iters int, converged bool) mrf.Solution {
	return mrf.Solution{
		Labels:        append([]int(nil), labels...),
		Energy:        energy,
		LowerBound:    g.TrivialLowerBound(),
		Iterations:    iters,
		Converged:     converged,
		EnergyHistory: append([]float64(nil), history...),
	}
}

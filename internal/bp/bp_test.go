package bp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"netdiversity/internal/mrf"
	"netdiversity/internal/mrf/mrftest"
)

func randomGraph(t *testing.T, rng *rand.Rand, nodes, labels int) *mrf.Graph {
	t.Helper()
	counts := make([]int, nodes)
	for i := range counts {
		counts[i] = labels
	}
	g, err := mrf.NewGraph(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		for l := 0; l < labels; l++ {
			_ = g.SetUnary(i, l, rng.Float64())
		}
	}
	for i := 0; i+1 < nodes; i++ {
		cost := make([][]float64, labels)
		for a := range cost {
			cost[a] = make([]float64, labels)
			for b := range cost[a] {
				cost[a][b] = rng.Float64()
			}
		}
		if _, err := g.AddEdge(i, i+1, cost); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func bruteForce(g *mrf.Graph) float64 {
	n := g.NumNodes()
	bestE := math.Inf(1)
	labels := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if e := g.MustEnergy(labels); e < bestE {
				bestE = e
			}
			return
		}
		for l := 0; l < g.NumLabels(i); l++ {
			labels[i] = l
			rec(i + 1)
		}
	}
	rec(0)
	return bestE
}

func TestSolveNilAndInvalidOptions(t *testing.T) {
	if _, err := Solve(nil, Options{}); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph should return ErrNilGraph, got %v", err)
	}
	g, _ := mrf.NewGraph([]int{2})
	if _, err := Solve(g, Options{Damping: 1.5}); err == nil {
		t.Error("damping outside [0,1) should be rejected")
	}
	if _, err := Solve(g, Options{Damping: -0.1}); err == nil {
		t.Error("negative damping should be rejected")
	}
	bad, _ := mrf.NewGraph([]int{2})
	_ = bad.SetUnary(0, 0, math.NaN())
	if _, err := Solve(bad, Options{}); err == nil {
		t.Error("invalid graph should be rejected")
	}
}

func TestSolveChainExact(t *testing.T) {
	// On trees min-sum BP is exact once converged.
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(t, rng, 6, 3)
	sol, err := Solve(g, Options{MaxIterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(g)
	if math.Abs(sol.Energy-want) > 1e-9 {
		t.Errorf("BP on a chain should be exact: got %v, want %v", sol.Energy, want)
	}
	if !sol.Converged {
		t.Error("BP should converge on a chain")
	}
}

func TestSolveNeverWorseThanGreedyStart(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(t, rng, 8, 3)
		sol, err := Solve(g, Options{MaxIterations: 50})
		if err != nil {
			t.Fatal(err)
		}
		greedy := g.MustEnergy(g.GreedyLabeling())
		if sol.Energy > greedy+1e-9 {
			t.Errorf("trial %d: BP energy %v worse than greedy %v", trial, sol.Energy, greedy)
		}
		if sol.Energy < sol.LowerBound-1e-9 {
			t.Error("energy below lower bound")
		}
	}
}

func TestSolveContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(t, rng, 8, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, g, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context should surface context.Canceled, got %v", err)
	}
}

func TestSolveHardConstraint(t *testing.T) {
	g, err := mrf.NewGraph([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.SetUnary(0, 0, mrf.HardPenalty)
	_ = g.SetUnary(1, 1, 0.5)
	if _, err := g.AddEdge(0, 1, mrf.PottsCost(2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Labels[0] != 1 {
		t.Errorf("pinned node decoded to %d, want 1", sol.Labels[0])
	}
}

func benchmarkSolve(b *testing.B, labels int) {
	g := mrftest.BenchGraph(b, 400, labels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(g, Options{MaxIterations: 10, Tolerance: 1e-12}); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkMessageRoundK4(b *testing.B) { benchmarkSolve(b, 4) }
func BenchmarkMessageRoundK6(b *testing.B) { benchmarkSolve(b, 6) }

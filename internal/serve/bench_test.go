package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// discardResponseWriter is a reusable ResponseWriter for handler-level
// benchmarks: it keeps one header map alive across requests so the handler's
// own allocations are the only thing measured.
type discardResponseWriter struct {
	h      http.Header
	status int
	bytes  int
}

func (w *discardResponseWriter) Header() http.Header { return w.h }
func (w *discardResponseWriter) WriteHeader(code int) {
	w.status = code
}
func (w *discardResponseWriter) Write(p []byte) (int, error) {
	w.bytes += len(p)
	return len(p), nil
}

// benchServer preloads one solved session and returns the server.
func benchServer(tb testing.TB, hosts int) *Server {
	tb.Helper()
	srv := New(Config{})
	net, cs, err := netmodel.FromSpec(testSpec(hosts))
	if err != nil {
		tb.Fatalf("spec: %v", err)
	}
	if err := srv.Preload("bench", net, cs, vulnsim.PaperSimilarity(), core.Options{Seed: 1}); err != nil {
		tb.Fatalf("preload: %v", err)
	}
	return srv
}

// TestAssignmentReadZeroAllocs pins the steady-state read contract of the
// encoded cache: once the snapshot's body is cached, serving GET
// ../assignment performs no marshaling and no allocation at all.
func TestAssignmentReadZeroAllocs(t *testing.T) {
	srv := benchServer(t, 50)
	req := httptest.NewRequest(http.MethodGet, "/v1/networks/bench/assignment", nil)
	req.SetPathValue("id", "bench")
	w := &discardResponseWriter{h: make(http.Header)}
	srv.handleAssignment(w, req) // populate the cache
	if w.status != http.StatusOK {
		t.Fatalf("warm-up status %d", w.status)
	}
	allocs := testing.AllocsPerRun(200, func() {
		srv.handleAssignment(w, req)
	})
	if allocs != 0 {
		t.Fatalf("cached assignment read allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkAssignmentRead measures the cached steady-state read: every
// iteration is a snapshot load, a version check and one body copy.
func BenchmarkAssignmentRead(b *testing.B) {
	srv := benchServer(b, 200)
	req := httptest.NewRequest(http.MethodGet, "/v1/networks/bench/assignment", nil)
	req.SetPathValue("id", "bench")
	w := &discardResponseWriter{h: make(http.Header)}
	srv.handleAssignment(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.handleAssignment(w, req)
	}
}

// BenchmarkAssignmentReadUncached measures the same read with the cache
// defeated (the entry is cleared every iteration), i.e. the pre-cache cost a
// read paid on every request: a full JSON marshal of the assignment.
func BenchmarkAssignmentReadUncached(b *testing.B) {
	srv := benchServer(b, 200)
	sess, _ := srv.store.get("bench")
	req := httptest.NewRequest(http.MethodGet, "/v1/networks/bench/assignment", nil)
	req.SetPathValue("id", "bench")
	w := &discardResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.encAssignment.Store(nil)
		srv.handleAssignment(w, req)
	}
}

// BenchmarkDeltaRoundTrip measures the full delta request path (decode,
// enqueue, leader turn, warm re-solve, ack) with an add/remove host pair per
// iteration so the network size stays fixed.
func BenchmarkDeltaRoundTrip(b *testing.B) {
	srv := benchServer(b, 50)
	addBody, err := json.Marshal(addHostDelta("bx", "h0"))
	if err != nil {
		b.Fatalf("marshal add: %v", err)
	}
	removeBody, err := json.Marshal(netmodel.Delta{Ops: []netmodel.DeltaOp{{Op: netmodel.OpRemoveHost, ID: "bx"}}})
	if err != nil {
		b.Fatalf("marshal remove: %v", err)
	}
	post := func(body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/networks/bench/deltas", bytes.NewReader(body))
		req.SetPathValue("id", "bench")
		w := &discardResponseWriter{h: make(http.Header)}
		srv.handleDeltas(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("delta status %d", w.status)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(addBody)
		post(removeBody)
	}
}

// Package serve implements the serving plane of the system: a long-running,
// multi-tenant diversification service exposed over HTTP/JSON by cmd/divd.
//
// Each tenant network is a session: a live core.Optimizer whose built MRF
// stays resident between requests, so a network delta costs an incremental
// ApplyDelta + Reoptimize instead of a cold build + solve, and an attack
// assessment compiles the current assignment onto the batched attack engine.
// Sessions are held in a sharded store (hash of the session ID picks the
// shard; each shard is an independently locked map) so session lookup never
// contends globally.
//
// Concurrency model — three rules:
//
//  1. Single writer per session.  Everything that touches a session's
//     optimiser or network (create-solve, delta apply, metric computation,
//     campaign compilation) runs under the session's writer slot, acquired
//     through a context-aware semaphore so a queued writer respects the
//     request deadline instead of blocking forever.
//  2. Lock-free reads.  After every successful solve the session publishes an
//     immutable snapshot (assignment, energy, hash, version) through an
//     atomic pointer; GET /assignment serves straight from it and never
//     waits on a writer.  This is the serving-layer counterpart of
//     core.Optimizer.Snapshot.
//  3. Shared solve scheduler.  Heavy work (initial solves, re-optimise
//     steps, Monte-Carlo assessment batches, metric evaluations) additionally
//     acquires a grant from a scheduler shared across all sessions, so N
//     tenants posting deltas simultaneously cannot oversubscribe the machine.
//     The scheduler is a priority/aging queue keyed on a per-request cost
//     estimate (the tenant's host count): small tenants schedule ahead of
//     big ones, waiting promotes any job so nothing starves, and a running
//     solve yields its slot between solver steps (through the grant's
//     checkpoint, wired into the solve driver via core.Options.Checkpoint)
//     whenever cheaper work queues up — a million-host solve is a stream of
//     schedulable units, not a convoy head.  Grants are acquired after the
//     session slot (session → scheduler, always in that order) and the wait
//     is context-aware, so deadlines cut the queue, not just the solve.
//
// Determinism: for a fixed session seed the create solve, every delta
// re-optimisation and every assessment with a fixed request seed return
// byte-identical JSON apart from the wall_ms timing fields — the contract CI
// smoke tests pin (see docs/API.md).
//
// Shutdown: Drain makes every new state-changing request fail fast with 503
// while in-flight solves finish; cmd/divd pairs it with http.Server.Shutdown,
// which waits for the in-flight handlers to return.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
	"netdiversity/internal/wal"
)

// Config tunes a Server.  The zero value serves with the documented defaults.
type Config struct {
	// Shards is the session-store shard count.  Default 8.
	Shards int
	// SolveWorkers is the solve scheduler's slot count: the number of
	// concurrently executing solves and assessment batches across all
	// sessions.  Default GOMAXPROCS.
	SolveWorkers int
	// MaxSessions bounds the number of live sessions.  Default 1024.
	MaxSessions int
	// RequestTimeout is the per-request deadline.  Requests may shorten it
	// with ?timeout_ms= but never extend it.  Default 30s.
	RequestTimeout time.Duration
	// MaxRequestBytes bounds any request body.  Default 8 MiB.
	MaxRequestBytes int64
	// SpecLimits bounds network specs accepted by the create endpoint.
	// Defaults: 10000 hosts, 200000 links, 20000 constraints, 32 services
	// per host, 64 candidates per service.
	SpecLimits netmodel.SpecLimits
	// DeltaLimits bounds deltas accepted by the delta endpoint.  Defaults:
	// 10000 ops per delta, host shape as SpecLimits.
	DeltaLimits netmodel.DeltaLimits
	// MaxAssessRuns caps the Monte-Carlo run count of one assessment.
	// Default 100000.
	MaxAssessRuns int
	// MaxIterations caps the per-session solver iteration budget a create
	// request may ask for.  Default 500.
	MaxIterations int
	// MaxCachedBytes bounds the total pre-encoded response bytes the
	// version-keyed read caches may hold across all sessions (see cache.go).
	// When the budget is exhausted, responses fall back to per-request
	// encoding.  Default 64 MiB.
	MaxCachedBytes int64
	// Persist enables the persistence plane: session state is journaled to
	// the manager's data directory and delta acks wait for the fsync
	// policy's durability point (see internal/wal and persist.go).  Nil
	// serves memory-only, exactly as before.
	Persist *wal.Manager
	// Replicator receives replication events (session created, record
	// committed, session deleted) under the session writer slot; nil
	// disables the replication plane.  See replica.go and internal/replic.
	Replicator Replicator
	// OnPromote is invoked by POST /v1/promote before sessions are made
	// writable — cmd/divd uses it to stop the follower's replication loop.
	OnPromote func()
	// Replication supplies the transport-side half of the healthz
	// replication block (follower lag, anti-entropy state); the server fills
	// in role and write-rejection counters itself.
	Replication func() *ReplicationStats
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.SolveWorkers <= 0 {
		c.SolveWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.SpecLimits == (netmodel.SpecLimits{}) {
		c.SpecLimits = netmodel.SpecLimits{
			MaxHosts:             10000,
			MaxLinks:             200000,
			MaxConstraints:       20000,
			MaxServicesPerHost:   32,
			MaxChoicesPerService: 64,
		}
	}
	if c.DeltaLimits.MaxOps == 0 && c.DeltaLimits.Host == (netmodel.SpecLimits{}) {
		c.DeltaLimits = netmodel.DeltaLimits{MaxOps: 10000, Host: c.SpecLimits}
	}
	if c.MaxAssessRuns <= 0 {
		c.MaxAssessRuns = 100000
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 500
	}
	if c.MaxCachedBytes <= 0 {
		c.MaxCachedBytes = 64 << 20
	}
	return c
}

// Server is the diversification service: a session store, a solve scheduler
// and the HTTP handlers binding them.  Create one with New and mount Handler
// on an http.Server.
type Server struct {
	cfg      Config
	store    *store
	sched    *scheduler
	mux      *http.ServeMux
	draining atomic.Bool
	stats    serverStats
	// cachedBytes is the total charge of the encoded-response caches
	// across all sessions, bounded by Config.MaxCachedBytes.
	cachedBytes atomic.Int64
	// role and primaryURL carry the replication role (see replica.go);
	// writesRejected counts not_primary rejections for healthz.
	role           atomic.Int32
	primaryURL     atomic.Pointer[string]
	writesRejected atomic.Int64
}

// serverStats are the server's backpressure counters, incremented lock-free
// on the request path and exposed through Stats and /healthz so load
// generators (internal/slam) and operators can attribute client-side error
// rates to the server's admission decisions.
type serverStats struct {
	requests    atomic.Int64
	rejected429 atomic.Int64
	rejected503 atomic.Int64
	timeout504  atomic.Int64
}

// Stats is a point-in-time snapshot of the server's request counters.
type Stats struct {
	// Requests counts every request reaching the API mux since start.
	Requests int64 `json:"requests"`
	// Rejected429 counts session-limit rejections (HTTP 429,
	// too_many_sessions).
	Rejected429 int64 `json:"rejected_429"`
	// Rejected503 counts drain rejections (HTTP 503, draining).
	Rejected503 int64 `json:"rejected_503"`
	// Timeout504 counts request-deadline hits (HTTP 504, timeout).
	Timeout504 int64 `json:"timeout_504"`
}

// Stats returns the server's backpressure counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:    s.stats.requests.Load(),
		Rejected429: s.stats.rejected429.Load(),
		Rejected503: s.stats.rejected503.Load(),
		Timeout504:  s.stats.timeout504.Load(),
	}
}

// New creates a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		store: newStore(cfg.Shards, cfg.MaxSessions),
		sched: newScheduler(cfg.SolveWorkers),
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the HTTP handler serving the v1 API, wrapped in the
// request-counting middleware feeding Stats.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// Drain puts the server into shutdown mode: every subsequent state-changing
// request (create, deltas, assess, delete) is rejected with 503 while
// in-flight work completes and reads keep being served.  Pair it with
// http.Server.Shutdown, which waits for the in-flight handlers.
func (s *Server) Drain() { s.draining.Store(true) }

// Sessions returns the number of live sessions (exposed on /healthz).
func (s *Server) Sessions() int { return s.store.len() }

// createSession builds, registers and cold-solves a session — the one
// construction path shared by the create endpoint and Preload.  The session
// is inserted into the store with its writer slot already held, so no other
// request can act on it before the first snapshot is published; on any
// failure it is closed and removed again, and a writer that raced the
// rollback observes the closed flag instead of an orphan.
func (s *Server) createSession(ctx context.Context, id, solverName string,
	net *netmodel.Network, cs *netmodel.ConstraintSet, sim *vulnsim.SimilarityTable,
	simSpec *SimilaritySpec, opts core.Options) (*session, snapshot, core.Result, error) {
	sess := &session{
		id:      id,
		solver:  solverName,
		seed:    opts.Seed,
		writer:  make(chan struct{}, 1),
		net:     net,
		cs:      cs,
		sim:     sim,
		simSpec: simSpec,
		maxIter: opts.MaxIterations,
	}
	sess.replicated = s.cfg.Replicator != nil
	// Every solve the session's optimiser ever runs reports to the slot
	// grant active at that moment, so long solves yield to cheaper tenants
	// at solver-step granularity.
	opts.Checkpoint = sess.checkpoint
	opt, err := core.NewOptimizer(net, sim, opts)
	if err != nil {
		return nil, snapshot{}, core.Result{}, err
	}
	if cs != nil && !cs.Empty() {
		if err := opt.SetConstraints(cs); err != nil {
			return nil, snapshot{}, core.Result{}, err
		}
	}
	sess.opt = opt
	sess.writer <- struct{}{} // pre-held until the first publish or rollback
	if err := s.store.put(sess); err != nil {
		return nil, snapshot{}, core.Result{}, err
	}
	res, err := func() (core.Result, error) {
		done, err := s.admit(ctx, sess)
		if err != nil {
			return core.Result{}, err
		}
		defer done()
		return opt.Optimize(ctx)
	}()
	rollback := func(err error) (*session, snapshot, core.Result, error) {
		sess.closed = true
		s.store.remove(id)
		s.dropCaches(sess)
		sess.unlock()
		return nil, snapshot{}, core.Result{}, err
	}
	if err != nil {
		return rollback(err)
	}
	snap := sess.buildSnapshot(1)
	var wsnap *wal.SessionSnapshot
	if s.cfg.Persist != nil || s.cfg.Replicator != nil {
		// The serialized snapshot feeds persistence and replication alike.
		wsnap, err = sess.walSnapshot(snap)
		if err != nil {
			return rollback(persistFailed(err))
		}
	}
	if s.cfg.Persist != nil {
		// The session exists once (and only once) its initial snapshot is on
		// disk: a create acked to the client survives an immediate crash.
		l, werr := s.cfg.Persist.Create(wsnap)
		if werr != nil {
			return rollback(persistFailed(werr))
		}
		sess.wlog = l
	}
	sess.install(snap)
	if rep := s.cfg.Replicator; rep != nil {
		rep.SessionCreated(wsnap)
	}
	sess.unlock()
	return sess, snap, res, nil
}

// admit acquires a scheduler grant sized to the session's network and
// attaches it as the session's active checkpoint target, so the solve about
// to run yields at step granularity.  The returned cleanup detaches and
// releases the grant; callers defer it around the heavy work.
func (s *Server) admit(ctx context.Context, sess *session) (func(), error) {
	g, err := s.sched.acquire(ctx, sess.solveCost())
	if err != nil {
		return nil, err
	}
	sess.beginGrant(g)
	return func() { sess.endGrant(g) }, nil
}

// Preload creates and solves a session outside the HTTP surface — divd uses
// it to come up already serving the networks named by -preload.  The solve
// runs synchronously under the server's request timeout.
func (s *Server) Preload(id string, net *netmodel.Network, cs *netmodel.ConstraintSet, sim *vulnsim.SimilarityTable, opts core.Options) error {
	if !validSessionID(id) {
		return fmt.Errorf("serve: invalid session id %q", id)
	}
	solverName := "trws"
	if opts.Solver != 0 {
		solverName = opts.Solver.String()
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	_, _, _, err := s.createSession(ctx, id, solverName, net, cs, sim, nil, opts)
	return err
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/wal"
)

// Replica integration: a server can run as a follower, holding sessions with
// no optimiser that are advanced exclusively through deterministic patch
// replay of the primary's WAL records (never re-solving — the same contract
// as crash recovery).  Followers serve every read endpoint from their local
// snapshots and reject writes with a not_primary redirect; Promote turns a
// caught-up follower into a writable primary by building optimisers around
// the replicated state.  The replication transport itself lives in
// internal/replic; this file is the serving-plane surface it drives.

// Server roles.  A server is born a primary (the historical behaviour);
// SetFollower flips it before serving, Promote flips it back at failover.
const (
	rolePrimary int32 = iota
	roleFollower
)

// Replicator receives the serving plane's replication events, invoked under
// the session's writer slot immediately after the state became visible (and,
// in persist mode, durable) — so per-session events arrive in commit order.
// Implemented by replic.Primary; every hook must be non-blocking.
type Replicator interface {
	// SessionCreated reports a session published at the snapshot's state:
	// create, preload, recovery, or replica full-sync.
	SessionCreated(snap *wal.SessionSnapshot)
	// RecordCommitted reports one committed record: a landed delta batch, a
	// lazy heal, or a replica apply.
	RecordCommitted(id string, rec *wal.Record)
	// SessionDeleted reports a session removed from the store.
	SessionDeleted(id string)
}

// errNotReplica is returned by ReplicaApply for sessions that have a live
// optimiser: a writable session must never be advanced by replay.
var errNotReplica = errors.New("serve: session is writable; refusing replica apply")

// SetFollower puts the server into follower mode replicating from the
// primary at the given base URL.  Call before serving traffic.
func (s *Server) SetFollower(primaryURL string) {
	s.primaryURL.Store(&primaryURL)
	s.role.Store(roleFollower)
}

// Role returns "primary" or "follower".
func (s *Server) Role() string {
	if s.role.Load() == roleFollower {
		return "follower"
	}
	return "primary"
}

// rejectNotPrimary fails state-changing requests on a follower with a 307
// redirect at the primary (Location carries the primary's URL for the same
// path) and the stable error code not_primary, counting the rejection for
// healthz.
func (s *Server) rejectNotPrimary(w http.ResponseWriter, r *http.Request) bool {
	if s.role.Load() != roleFollower {
		return false
	}
	s.writesRejected.Add(1)
	primary := ""
	if p := s.primaryURL.Load(); p != nil {
		primary = *p
	}
	if primary != "" {
		w.Header().Set("Location", primary+r.URL.RequestURI())
	}
	writeError(w, http.StatusTemporaryRedirect, "not_primary",
		"this node is a replication follower; retry the write against the primary")
	return true
}

// replicaCtx bounds the internal locking of replica operations, which run on
// replication goroutines with no request deadline of their own.
func (s *Server) replicaCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
}

// ReplicaCreate installs (or replaces) a session from a full primary
// snapshot: network and constraints are rebuilt from the journaled spec, the
// assignment is verified against the snapshot hash and the network shape,
// and the published state appears exactly as the primary served it — no
// optimiser, no solve.  With persistence enabled the snapshot is journaled
// first, so a follower restart recovers its replicas locally.
func (s *Server) ReplicaCreate(snap *wal.SessionSnapshot) error {
	if !validSessionID(snap.ID) {
		return fmt.Errorf("serve: invalid replica session id %q", snap.ID)
	}
	if snap.Assignment == nil {
		return fmt.Errorf("serve: replica snapshot %s carries no assignment", snap.ID)
	}
	if got := snap.Assignment.Hash(); got != snap.Hash {
		return fmt.Errorf("serve: replica snapshot %s assignment hash %s != journaled %s", snap.ID, got, snap.Hash)
	}
	net, cs, err := netmodel.FromSpec(snap.Spec)
	if err != nil {
		return fmt.Errorf("serve: replica snapshot %s: %w", snap.ID, err)
	}
	if err := snap.Assignment.ValidateFor(net); err != nil {
		return fmt.Errorf("serve: replica snapshot %s: %w", snap.ID, err)
	}
	var simSpec *SimilaritySpec
	if len(snap.Similarity) > 0 {
		simSpec = &SimilaritySpec{}
		if err := json.Unmarshal(snap.Similarity, simSpec); err != nil {
			return fmt.Errorf("serve: replica snapshot %s: decode similarity spec: %w", snap.ID, err)
		}
	}
	sim, err := buildSimilarity(simSpec, net)
	if err != nil {
		return fmt.Errorf("serve: replica snapshot %s: %w", snap.ID, err)
	}
	// Full sync replaces whatever incarnation is live: close it under its
	// writer slot exactly like DELETE, so in-flight work observes closed.
	if err := s.ReplicaDelete(snap.ID); err != nil {
		return err
	}
	sess := &session{
		id:      snap.ID,
		solver:  snap.Solver,
		seed:    snap.Seed,
		writer:  make(chan struct{}, 1),
		net:     net,
		cs:      cs,
		sim:     sim,
		simSpec: simSpec,
		maxIter: snap.MaxIterations,
	}
	sess.replicated = s.cfg.Replicator != nil
	sess.writer <- struct{}{} // pre-held until the replica snapshot is published
	if err := s.store.put(sess); err != nil {
		sess.unlock()
		return fmt.Errorf("serve: replica session %s: %w", snap.ID, err)
	}
	if s.cfg.Persist != nil {
		l, err := s.cfg.Persist.Create(snap)
		if err != nil {
			sess.closed = true
			s.store.remove(snap.ID)
			sess.unlock()
			return persistFailed(err)
		}
		sess.wlog = l
	}
	sess.install(snapshot{
		version:    snap.Version,
		energy:     snap.Energy,
		assignment: snap.Assignment.Clone(),
		hash:       snap.Hash,
		hosts:      net.NumHosts(),
		links:      net.NumLinks(),
	})
	if rep := s.cfg.Replicator; rep != nil {
		rep.SessionCreated(snap)
	}
	sess.unlock()
	return nil
}

// ReplicaApply advances a replica session by one committed record through
// the deterministic replay path: the record's deltas mutate the network, the
// assignment patch folds onto a clone of the published assignment, and the
// result must reproduce the record's hash before anything becomes visible —
// the same end-to-end check recovery applies to the on-disk log.  A record
// that fails replay poisons the session (it is dropped, forcing the next
// anti-entropy round to full-sync); a chain gap is a plain error the caller
// repairs by fetching the missing records.
func (s *Server) ReplicaApply(id string, rec *wal.Record) error {
	sess, ok := s.store.get(id)
	if !ok {
		return fmt.Errorf("serve: unknown replica session %q", id)
	}
	ctx, cancel := s.replicaCtx()
	defer cancel()
	if err := sess.lock(ctx); err != nil {
		return err
	}
	defer sess.unlock()
	if sess.closed {
		return errSessionClosed
	}
	if sess.opt != nil {
		return errNotReplica
	}
	snap := sess.snap.Load()
	if snap == nil || rec.PrevVersion != snap.version {
		have := uint64(0)
		if snap != nil {
			have = snap.version
		}
		return fmt.Errorf("serve: replica %s record chains from %d, replica is at %d", id, rec.PrevVersion, have)
	}
	// From the first delta the network is mutating: any failure from here on
	// leaves the replica inconsistent, so the session is dropped and the
	// caller resyncs from a snapshot.
	poison := func(err error) error {
		sess.closed = true
		s.store.remove(sess.id)
		s.dropCaches(sess)
		if s.cfg.Persist != nil {
			s.cfg.Persist.Remove(sess.id) //nolint:errcheck // failure degrades the manager
		}
		if rep := s.cfg.Replicator; rep != nil {
			rep.SessionDeleted(sess.id)
		}
		return err
	}
	for i, d := range rec.Deltas {
		if err := d.Apply(sess.net); err != nil {
			return poison(fmt.Errorf("serve: replica %s record %d delta %d: %w", id, rec.Version, i, err))
		}
	}
	a := snap.assignment.Clone()
	a.ApplyPatch(rec.Changed, rec.Removed)
	if got := a.Hash(); got != rec.Hash {
		return poison(fmt.Errorf("serve: replica %s record %d replayed hash %s != journaled %s", id, rec.Version, got, rec.Hash))
	}
	next := snapshot{
		version:    rec.Version,
		energy:     rec.Energy,
		assignment: a,
		hash:       rec.Hash,
		hosts:      sess.net.NumHosts(),
		links:      sess.net.NumLinks(),
	}
	if sess.wlog != nil {
		// Durability before visibility, exactly like the primary's publish:
		// the identical record lands in the follower's own log, so a follower
		// restart recovers to the same replicated state.
		if err := sess.wlog.Append(rec); err != nil {
			return persistFailed(err)
		}
		if sess.wlog.ShouldSnapshot() {
			if wsnap, err := sess.walSnapshot(next); err == nil {
				sess.wlog.WriteSnapshot(wsnap) //nolint:errcheck // degradation recorded by the manager
			}
		}
	}
	sess.install(next)
	if rep := s.cfg.Replicator; rep != nil {
		rep.RecordCommitted(sess.id, rec)
	}
	return nil
}

// ReplicaDelete removes a session on a follower (the primary deleted it, or
// a full sync is replacing it).  Unknown sessions are a no-op.
func (s *Server) ReplicaDelete(id string) error {
	sess, ok := s.store.get(id)
	if !ok {
		return nil
	}
	ctx, cancel := s.replicaCtx()
	defer cancel()
	if err := sess.lock(ctx); err != nil {
		return err
	}
	if !sess.closed {
		sess.closed = true
		s.store.remove(sess.id)
		s.dropCaches(sess)
		if s.cfg.Persist != nil {
			s.cfg.Persist.Remove(sess.id) //nolint:errcheck // failure degrades the manager
		}
		if rep := s.cfg.Replicator; rep != nil {
			rep.SessionDeleted(sess.id)
		}
	}
	sess.unlock()
	return nil
}

// ReplicaVersion reports a session's published version and hash — the
// follower's contiguously applied floor for anti-entropy.
func (s *Server) ReplicaVersion(id string) (uint64, string, bool) {
	sess, ok := s.store.get(id)
	if !ok {
		return 0, "", false
	}
	snap := sess.snap.Load()
	if snap == nil {
		return 0, "", false
	}
	return snap.version, snap.hash, true
}

// SessionIDs returns the live session IDs in sorted order.
func (s *Server) SessionIDs() []string {
	sessions := s.store.list()
	out := make([]string, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.id)
	}
	return out
}

// CurrentSnapshot serializes a session's full published state — the payload
// of a replication full sync.  It runs under the writer slot (the spec
// serialization reads the network) against the currently published snapshot.
func (s *Server) CurrentSnapshot(id string) (*wal.SessionSnapshot, error) {
	sess, ok := s.store.get(id)
	if !ok {
		return nil, fmt.Errorf("serve: unknown session %q", id)
	}
	ctx, cancel := s.replicaCtx()
	defer cancel()
	if err := sess.lock(ctx); err != nil {
		return nil, err
	}
	defer sess.unlock()
	if sess.closed {
		return nil, errSessionClosed
	}
	snap := sess.snap.Load()
	if snap == nil {
		return nil, fmt.Errorf("serve: session %q has not published yet", id)
	}
	return sess.walSnapshot(*snap)
}

// RestoreReplica registers a session recovered from a follower's local WAL
// without building an optimiser: the replica keeps serving the recovered
// snapshot and stays advanceable by ReplicaApply.  The follower counterpart
// of Restore, used by divd boot when -follow is set.
func (s *Server) RestoreReplica(rec *wal.Recovered) error {
	meta := rec.Snapshot
	if !validSessionID(meta.ID) {
		return fmt.Errorf("serve: invalid recovered session id %q", meta.ID)
	}
	var simSpec *SimilaritySpec
	if len(meta.Similarity) > 0 {
		simSpec = &SimilaritySpec{}
		if err := json.Unmarshal(meta.Similarity, simSpec); err != nil {
			return fmt.Errorf("serve: session %s: decode similarity spec: %w", meta.ID, err)
		}
	}
	sim, err := buildSimilarity(simSpec, rec.Net)
	if err != nil {
		return fmt.Errorf("serve: session %s: %w", meta.ID, err)
	}
	sess := &session{
		id:      meta.ID,
		solver:  meta.Solver,
		seed:    meta.Seed,
		writer:  make(chan struct{}, 1),
		net:     rec.Net,
		cs:      rec.Constraints,
		sim:     sim,
		simSpec: simSpec,
		maxIter: meta.MaxIterations,
		wlog:    rec.Log,
	}
	sess.replicated = s.cfg.Replicator != nil
	sess.writer <- struct{}{} // pre-held until the recovered snapshot is published
	if err := s.store.put(sess); err != nil {
		sess.unlock()
		return fmt.Errorf("serve: session %s: %w", meta.ID, err)
	}
	sess.install(snapshot{
		version:    meta.Version,
		energy:     meta.Energy,
		assignment: meta.Assignment.Clone(),
		hash:       meta.Hash,
		hosts:      rec.Net.NumHosts(),
		links:      rec.Net.NumLinks(),
	})
	if rep := s.cfg.Replicator; rep != nil {
		rep.SessionCreated(meta)
	}
	sess.unlock()
	return nil
}

// Promote turns a follower into a writable primary: every replica session
// gets an optimiser rebuilt around its replicated network and seeded with
// the replicated assignment (no re-solve — the promoted node serves exactly
// the state it replicated), and the role flips so writes are accepted.
// Returns the number of sessions promoted.  Idempotent on a primary.
func (s *Server) Promote() (int, error) {
	promoted := 0
	for _, sess := range s.store.list() {
		ctx, cancel := s.replicaCtx()
		err := sess.lock(ctx)
		cancel()
		if err != nil {
			return promoted, err
		}
		err = func() error {
			defer sess.unlock()
			if sess.closed || sess.opt != nil {
				return nil
			}
			solver, err := core.ParseSolver(sess.solver)
			if err != nil {
				return fmt.Errorf("serve: promote %s: %w", sess.id, err)
			}
			opts := core.Options{
				Solver:        solver,
				MaxIterations: sess.maxIter,
				Seed:          sess.seed,
				Checkpoint:    sess.checkpoint,
			}
			opt, err := core.NewOptimizer(sess.net, sess.sim, opts)
			if err != nil {
				return fmt.Errorf("serve: promote %s: %w", sess.id, err)
			}
			if sess.cs != nil && !sess.cs.Empty() {
				if err := opt.SetConstraints(sess.cs); err != nil {
					return fmt.Errorf("serve: promote %s: %w", sess.id, err)
				}
			}
			snap := sess.snap.Load()
			if snap != nil {
				opt.RestoreAssignment(snap.assignment.Clone(), snap.energy)
			}
			sess.opt = opt
			promoted++
			return nil
		}()
		if err != nil {
			return promoted, err
		}
	}
	s.role.Store(rolePrimary)
	return promoted, nil
}

// handlePromote implements POST /v1/promote: stop following (via the
// configured OnPromote hook) and make every replica session writable.  409
// on a node that is already primary.
func (s *Server) handlePromote(w http.ResponseWriter, _ *http.Request) {
	if s.role.Load() != roleFollower {
		writeError(w, http.StatusConflict, "conflict", "node is already primary")
		return
	}
	// Stop the follower loop first so no replica apply races the optimiser
	// builds; in-flight applies finish under their writer slots either way.
	if s.cfg.OnPromote != nil {
		s.cfg.OnPromote()
	}
	n, err := s.Promote()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{Role: s.Role(), Sessions: n})
}

// replicationHealth assembles the healthz replication block.
func (s *Server) replicationHealth() *ReplicationStats {
	var rs *ReplicationStats
	if s.cfg.Replication != nil {
		rs = s.cfg.Replication()
	}
	if rs == nil {
		rs = &ReplicationStats{}
	}
	rs.Role = s.Role()
	if p := s.primaryURL.Load(); p != nil {
		rs.Primary = *p
	}
	rs.WritesRejected = s.writesRejected.Load()
	return rs
}

package serve

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/wal"
)

func openWAL(t *testing.T, dir string, opts wal.Options) *wal.Manager {
	t.Helper()
	opts.Dir = dir
	m, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestPersistRestartEquivalence is the restart contract: everything a
// client saw acked before the "crash" is served identically by a fresh
// server recovered from the same data directory.
func TestPersistRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	m := openWAL(t, dir, wal.Options{Policy: wal.SyncAlways, SnapshotEvery: 2})
	_, ts := newTestServer(t, Config{Persist: m})

	var created CreateResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{
		ID: "durable", Spec: testSpec(5), Seed: 3,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	// Several deltas so at least one compacted snapshot happens mid-stream
	// (SnapshotEvery=2) and the recovery path mixes snapshot + log replay.
	var dres DeltaResponse
	for i := 0; i < 5; i++ {
		id := netmodel.HostID([]string{"x1", "x2", "x3", "x4", "x5"}[i])
		if status := do(t, http.MethodPost, ts.URL+"/v1/networks/durable/deltas",
			addHostDelta(id, "h0"), &dres); status != http.StatusOK {
			t.Fatalf("delta %d: status %d", i, status)
		}
	}
	var before AssignmentResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/durable/assignment", nil, &before); status != http.StatusOK {
		t.Fatal("assignment read failed")
	}
	m.Close() // handles released; data dir now cold, as after kill -9

	m2 := openWAL(t, dir, wal.Options{Policy: wal.SyncAlways, SnapshotEvery: 2})
	recovered, skipped, err := m2.Recover()
	if err != nil || len(skipped) != 0 || len(recovered) != 1 {
		t.Fatalf("Recover: %v (%d recovered, %d skipped)", err, len(recovered), len(skipped))
	}
	srv2, ts2 := newTestServer(t, Config{Persist: m2})
	if err := srv2.Restore(recovered[0]); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	var after AssignmentResponse
	if status := do(t, http.MethodGet, ts2.URL+"/v1/networks/durable/assignment", nil, &after); status != http.StatusOK {
		t.Fatal("post-restore assignment read failed")
	}
	if after.Version != before.Version || after.AssignmentHash != before.AssignmentHash {
		t.Fatalf("restart changed state: v%d/%s -> v%d/%s",
			before.Version, before.AssignmentHash, after.Version, after.AssignmentHash)
	}
	if !after.Assignment.Equal(before.Assignment) {
		t.Fatal("restart changed the assignment content")
	}

	// The recovered session keeps working: deltas, metrics, assess.
	if status := do(t, http.MethodPost, ts2.URL+"/v1/networks/durable/deltas",
		addHostDelta("x6", "h1"), &dres); status != http.StatusOK {
		t.Fatalf("post-restore delta: status %d", status)
	}
	if dres.Version != before.Version+1 {
		t.Fatalf("post-restore version %d, want %d", dres.Version, before.Version+1)
	}
	var metrics MetricsResponse
	if status := do(t, http.MethodGet, ts2.URL+"/v1/networks/durable/metrics", nil, &metrics); status != http.StatusOK {
		t.Fatalf("post-restore metrics: status %d", status)
	}
	if metrics.Hosts != 11 || metrics.D1 <= 0 {
		t.Fatalf("post-restore metrics: %+v", metrics)
	}
}

// TestPersistDegradedSheds503 pins the disk-failure contract: writes shed
// 503 persistence_degraded with Retry-After, reads keep serving, and
// /healthz reports the degraded persistence plane.
func TestPersistDegradedSheds503(t *testing.T) {
	ffs := wal.NewFaultFS(wal.OS)
	m := openWAL(t, t.TempDir(), wal.Options{FS: ffs})
	_, ts := newTestServer(t, Config{Persist: m})

	var created CreateResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{
		ID: "sick", Spec: testSpec(4), Seed: 1,
	}, &created); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}

	// The disk dies; the next delta fails its journal append and must NOT
	// change visible state.
	ffs.FailWrites(errors.New("EIO"))
	status, code := errCode(t, http.MethodPost, ts.URL+"/v1/networks/sick/deltas", addHostDelta("x1", "h0"))
	if status != http.StatusServiceUnavailable || code != "persistence_degraded" {
		t.Fatalf("delta on dead disk: status %d code %s", status, code)
	}
	var got AssignmentResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/sick/assignment", nil, &got); status != http.StatusOK {
		t.Fatal("read while degraded failed")
	}
	if got.Version != created.Version || got.AssignmentHash != created.AssignmentHash {
		t.Fatalf("un-journaled state became visible: v%d/%s", got.Version, got.AssignmentHash)
	}

	// Degradation is sticky: every state-changing endpoint sheds with
	// Retry-After even after the disk "heals", until restart.
	ffs.FailWrites(nil)
	resp, err := http.Post(ts.URL+"/v1/networks/sick/deltas", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded delta: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{Spec: testSpec(2)}); status != http.StatusServiceUnavailable || code != "persistence_degraded" {
		t.Fatalf("degraded create: status %d code %s", status, code)
	}
	if status, code := errCode(t, http.MethodDelete, ts.URL+"/v1/networks/sick", nil); status != http.StatusServiceUnavailable || code != "persistence_degraded" {
		t.Fatalf("degraded delete: status %d code %s", status, code)
	}

	var health HealthResponse
	if status := do(t, http.MethodGet, ts.URL+"/healthz", nil, &health); status != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if health.Status != "degraded" || health.Persistence == nil || !health.Persistence.Degraded {
		t.Fatalf("healthz: %+v", health)
	}
	if health.Persistence.LastError == "" {
		t.Fatalf("healthz persistence lacks last_error: %+v", health.Persistence)
	}
}

// TestPersistHealthzBlock pins the healthy-path persistence report.
func TestPersistHealthzBlock(t *testing.T) {
	m := openWAL(t, t.TempDir(), wal.Options{Policy: wal.SyncInterval})
	_, ts := newTestServer(t, Config{Persist: m})
	var health HealthResponse
	if status := do(t, http.MethodGet, ts.URL+"/healthz", nil, &health); status != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if health.Status != "ok" || health.Persistence == nil {
		t.Fatalf("healthz: %+v", health)
	}
	if health.Persistence.Policy != "interval" || health.Persistence.Degraded {
		t.Fatalf("persistence block: %+v", health.Persistence)
	}
}

// TestPersistDeleteRemovesDir pins that DELETE drops the session's
// directory, so a restart does not resurrect it.
func TestPersistDeleteRemovesDir(t *testing.T) {
	dir := t.TempDir()
	m := openWAL(t, dir, wal.Options{})
	_, ts := newTestServer(t, Config{Persist: m})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{
		ID: "gone", Spec: testSpec(3),
	}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	sessDir := filepath.Join(dir, "sessions", "gone")
	if _, err := os.Stat(sessDir); err != nil {
		t.Fatalf("session dir missing after create: %v", err)
	}
	if status := do(t, http.MethodDelete, ts.URL+"/v1/networks/gone", nil, nil); status != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	if _, err := os.Stat(sessDir); !os.IsNotExist(err) {
		t.Fatalf("session dir survived delete: %v", err)
	}
}

// TestPersistCustomSimilaritySurvivesRestart pins that a custom similarity
// table is journaled in the snapshot and rebuilt on recovery.
func TestPersistCustomSimilaritySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m := openWAL(t, dir, wal.Options{})
	_, ts := newTestServer(t, Config{Persist: m})
	req := CreateRequest{
		ID: "sim", Spec: testSpec(4), Seed: 5,
		Similarity: &SimilaritySpec{
			Kind:    "custom",
			Default: 0.25,
			Entries: []SimilarityEntry{{A: "win7", B: "ubt1404", Sim: 0.9}},
		},
	}
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", req, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	var before MetricsResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/sim/metrics", nil, &before); status != http.StatusOK {
		t.Fatal("metrics failed")
	}
	m.Close()

	m2 := openWAL(t, dir, wal.Options{})
	recovered, _, err := m2.Recover()
	if err != nil || len(recovered) != 1 {
		t.Fatalf("Recover: %v", err)
	}
	srv2, ts2 := newTestServer(t, Config{Persist: m2})
	if err := srv2.Restore(recovered[0]); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	var after MetricsResponse
	if status := do(t, http.MethodGet, ts2.URL+"/v1/networks/sim/metrics", nil, &after); status != http.StatusOK {
		t.Fatal("post-restore metrics failed")
	}
	// PairwiseCost is computed from the similarity table over the live
	// assignment; identical values mean the custom table was rebuilt.
	if after.PairwiseCost != before.PairwiseCost || after.Energy != before.Energy {
		t.Fatalf("similarity not restored: %+v vs %+v", before, after)
	}
}

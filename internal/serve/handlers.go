package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"netdiversity/internal/adversary"
	"netdiversity/internal/attacksim"
	"netdiversity/internal/core"
	"netdiversity/internal/metrics"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/wal"
)

// routes mounts the v1 API on the server's mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/networks", s.handleCreate)
	s.mux.HandleFunc("GET /v1/networks", s.handleList)
	s.mux.HandleFunc("GET /v1/networks/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/networks/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/networks/{id}/deltas", s.handleDeltas)
	s.mux.HandleFunc("GET /v1/networks/{id}/assignment", s.handleAssignment)
	s.mux.HandleFunc("GET /v1/networks/{id}/metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/networks/{id}/assess", s.handleAssess)
	s.mux.HandleFunc("POST /v1/promote", s.handlePromote)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

// writeJSON writes a 2xx response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// writeError writes the error envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorBody{Error: errorInfo{Code: code, Message: message}})
}

// errSessionClosed is observed by a writer that acquired a session's slot
// after the session was deleted (or its create rolled back).
var errSessionClosed = errors.New("session was deleted")

// retryAfterSeconds is the Retry-After value sent with every 429 and 503:
// both conditions clear on the order of seconds (a session freed, the drain
// finishing a solve), so well-behaved load clients back off briefly instead
// of hammering the admission path.
const retryAfterSeconds = "1"

// writeFailure maps an internal error onto the API's error codes, counting
// the backpressure classes (429, 504) and stamping Retry-After on 429 so
// closed-loop clients know the rejection is transient.
func (s *Server) writeFailure(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.stats.timeout504.Add(1)
		writeError(w, http.StatusGatewayTimeout, "timeout", "request deadline exceeded")
	case errors.Is(err, errSessionClosed):
		writeError(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, ErrSessionExists):
		writeError(w, http.StatusConflict, "conflict", err.Error())
	case errors.Is(err, ErrTooManySessions):
		s.stats.rejected429.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusTooManyRequests, "too_many_sessions", err.Error())
	case errors.Is(err, wal.ErrDegraded):
		s.stats.rejected503.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, "persistence_degraded", err.Error())
	default:
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	}
}

// requestContext derives the handler context: the server's request timeout,
// optionally shortened (never extended) by a ?timeout_ms= query parameter.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < timeout {
				timeout = d
			}
		}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// decodeBody decodes a JSON request body strictly: bounded size, unknown
// fields rejected, trailing data rejected.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	if dec.More() {
		return errors.New("decode request: trailing data after JSON body")
	}
	return nil
}

// validSessionID restricts client-chosen session IDs to a URL- and log-safe
// alphabet.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	if id == "." || id == ".." {
		// Path-safe alphabet or not, these resolve to directories when the
		// ID names the session's folder under the persistence data dir.
		return false
	}
	for _, c := range id {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// rejectDraining fails state-changing requests during shutdown, counting
// the rejection and stamping Retry-After so clients retry against the
// replacement instance instead of treating the drain as a hard failure.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		s.stats.rejected503.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, "draining", "server is shutting down")
		return true
	}
	return false
}

// summary renders a session's published state.
func sessionSummary(sess *session, snap *snapshot) NetworkSummary {
	return NetworkSummary{
		ID:             sess.id,
		Hosts:          snap.hosts,
		Links:          snap.links,
		Solver:         sess.solver,
		Seed:           sess.seed,
		Version:        snap.version,
		Energy:         snap.energy,
		AssignmentHash: snap.hash,
	}
}

// loadSession resolves the {id} path segment, writing 404 when unknown and
// 409 while the session's first solve has not published yet.
func (s *Server) loadSession(w http.ResponseWriter, r *http.Request, needSnap bool) (*session, *snapshot, bool) {
	id := r.PathValue("id")
	sess, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown network %q", id))
		return nil, nil, false
	}
	snap := sess.snap.Load()
	if needSnap && snap == nil {
		writeError(w, http.StatusConflict, "conflict", fmt.Sprintf("network %q is still initialising", id))
		return nil, nil, false
	}
	return sess, snap, true
}

// handleCreate implements POST /v1/networks: build the network from the
// spec, run the initial solve through the global pool and publish the first
// snapshot.  The session is inserted before solving so the ID is reserved
// against concurrent creates; a failed solve removes it again.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.rejectNotPrimary(w, r) || s.rejectDraining(w) || s.rejectDegraded(w) {
		return
	}
	var req CreateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeFailure(w, err)
		return
	}
	if req.ID != "" && !validSessionID(req.ID) {
		writeError(w, http.StatusBadRequest, "bad_request",
			"id must be 1-64 characters from [a-zA-Z0-9._-]")
		return
	}
	if err := req.Spec.CheckLimits(s.cfg.SpecLimits); err != nil {
		s.writeFailure(w, err)
		return
	}
	net, cs, err := netmodel.FromSpec(req.Spec)
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	sim, err := buildSimilarity(req.Similarity, net)
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	solverName := req.Solver
	if solverName == "" {
		solverName = "trws"
	}
	solver, err := core.ParseSolver(solverName)
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	iters := req.MaxIterations
	if iters > s.cfg.MaxIterations {
		iters = s.cfg.MaxIterations
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	opts := core.Options{
		Solver:        solver,
		MaxIterations: iters,
		Seed:          req.Seed,
	}
	var (
		sess *session
		snap snapshot
		res  core.Result
	)
	for {
		id := req.ID
		if id == "" {
			id = s.store.allocID()
		}
		sess, snap, res, err = s.createSession(ctx, id, solverName, net, cs, sim, req.Similarity, opts)
		if err == nil {
			break
		}
		// An auto-assigned ID can collide with a client-chosen "net-<n>";
		// the counter is monotonic, so retrying allocates past the squatter.
		// Conflicts on an explicit ID are the client's to resolve (409).
		if req.ID == "" && errors.Is(err, ErrSessionExists) {
			continue
		}
		s.writeFailure(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateResponse{
		NetworkSummary:       sessionSummary(sess, &snap),
		Iterations:           res.Iterations,
		Converged:            res.Converged,
		WallMS:               float64(time.Since(start)) / float64(time.Millisecond),
		ConstraintViolations: res.ConstraintViolations,
	})
}

// handleList implements GET /v1/networks.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	resp := ListResponse{Networks: []NetworkSummary{}}
	for _, sess := range s.store.list() {
		if snap := sess.snap.Load(); snap != nil {
			resp.Networks = append(resp.Networks, sessionSummary(sess, snap))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleGet implements GET /v1/networks/{id}, served from the version-keyed
// encoded cache (see cache.go) when the summary of the loaded snapshot is
// already marshaled.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, snap, ok := s.loadSession(w, r, true)
	if !ok {
		return
	}
	old := sess.encSummary.Load()
	if old != nil && old.version == snap.version {
		writeCached(w, old.body)
		return
	}
	body, err := encodeBody(sessionSummary(sess, snap))
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	s.storeEnc(sess, &sess.encSummary, old, &encEntry{version: snap.version, body: body})
	writeCached(w, body)
}

// handleDelete implements DELETE /v1/networks/{id}.  The removal runs under
// the writer slot, so an in-flight delta either completes (and is then
// deleted) or arrives after and observes the closed session — acknowledged
// writes never disappear retroactively.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.rejectNotPrimary(w, r) || s.rejectDraining(w) || s.rejectDegraded(w) {
		return
	}
	sess, _, ok := s.loadSession(w, r, false)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	if err := sess.lock(ctx); err != nil {
		s.writeFailure(w, err)
		return
	}
	closed := sess.closed
	if !closed {
		sess.closed = true
		s.store.remove(sess.id)
		s.dropCaches(sess)
		if s.cfg.Persist != nil {
			// Remove the on-disk state under the writer slot, so a crash
			// between ack and removal at worst resurrects the session (the
			// client retries the delete) and never the other way round.
			s.cfg.Persist.Remove(sess.id) //nolint:errcheck // failure degrades the manager
		}
		if rep := s.cfg.Replicator; rep != nil {
			rep.SessionDeleted(sess.id)
		}
	}
	sess.unlock()
	if closed {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown network %q", sess.id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDeltas implements POST /v1/networks/{id}/deltas through the
// coalescing queue (see coalesce.go): the request enqueues its delta, and
// whichever queued request wins the writer slot lands the whole queue as one
// validated batch — one apply, one warm re-solve, one snapshot whose version
// advances by the accepted count.  Per-delta all-or-nothing validation is
// preserved (a rejected delta never touches the session and the rest of the
// batch lands as if it never existed), and each request is acked with the
// post-batch version.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	if s.rejectNotPrimary(w, r) || s.rejectDraining(w) || s.rejectDegraded(w) {
		return
	}
	sess, _, ok := s.loadSession(w, r, false)
	if !ok {
		return
	}
	// Deltas are decoded with the same strict decoder the JSON-lines stream
	// surface uses: unknown fields rejected, the op structurally validated,
	// and exactly one delta per request body.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := netmodel.NewDeltaDecoder(r.Body).Strict()
	delta, err := dec.Next()
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = errors.New("decode request: empty body")
		}
		s.writeFailure(w, err)
		return
	}
	if _, err := dec.Next(); !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad_request", "decode request: trailing data after JSON body")
		return
	}
	if err := delta.CheckLimits(s.cfg.DeltaLimits); err != nil {
		s.writeFailure(w, err)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	req := newDeltaReq(delta)
	sess.deltas.enqueue(req)
	if err := sess.lock(ctx); err != nil {
		if req.state.CompareAndSwap(reqWaiting, reqWithdrawn) {
			// No leader claimed the request before the deadline: it was
			// never applied and never will be — the classic lock-timeout.
			s.writeFailure(w, err)
			return
		}
		// A running leader claimed the delta: the batch may still land
		// after this 504, exactly like the serial path's mid-solve timeout
		// (the session heals lazily if the leader's solve also dies).
		s.writeFailure(w, err)
		return
	}
	// Leader: land the queued batch (which includes this request unless an
	// earlier leader already acked it), then report our own outcome.
	s.runDeltaBatch(ctx, sess)
	out := <-req.done
	req.recycle() // ack consumed: no leader can reference the struct anymore
	if out.err != nil {
		s.writeFailure(w, out.err)
		return
	}
	out.resp.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, out.resp)
}

// healPending restores network/assignment consistency for a session whose
// last delta was applied but never re-optimised (its request's deadline
// expired mid-solve): the pending dirty set is warm-solved and a fresh
// snapshot published.  Must be called by the writer-slot holder; a no-op on
// healthy sessions.
func (s *Server) healPending(ctx context.Context, sess *session) error {
	if !sess.pendingReopt {
		return nil
	}
	done, err := s.admit(ctx, sess)
	if err != nil {
		return err
	}
	defer done()
	if _, err := sess.opt.Reoptimize(ctx); err != nil {
		return err
	}
	prev := sess.snap.Load()
	snap := sess.buildSnapshot(1)
	// The healed state folds in the timed-out batch (sess.pendingJournal in
	// persist mode), so it is journaled like any other publish before it
	// becomes visible.
	rec, err := s.journalPublish(sess, prev, snap, nil)
	if err != nil {
		return err
	}
	sess.pendingReopt = false
	sess.install(snap)
	if rep := s.cfg.Replicator; rep != nil && rec != nil {
		rep.RecordCommitted(sess.id, rec)
	}
	return nil
}

// changedHosts counts hosts of the new assignment that joined or changed
// product relative to the previous snapshot.
func changedHosts(prev *snapshot, cur *netmodel.Assignment) int {
	if prev == nil || prev.assignment == nil {
		return 0
	}
	changed := 0
	for _, h := range cur.Hosts() {
		for svc, p := range cur.HostAssignment(h) {
			if was, ok := prev.assignment.Get(h, svc); !ok || was != p {
				changed++ // joined (no prior product) or switched product
				break
			}
		}
	}
	return changed
}

// handleAssignment implements GET /v1/networks/{id}/assignment straight from
// the published snapshot — no locks, so reads never wait on a re-solve.  The
// snapshot is immutable, so its JSON body is marshaled once per version and
// every further read at that version is a copy of the cached bytes.
func (s *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	sess, snap, ok := s.loadSession(w, r, true)
	if !ok {
		return
	}
	old := sess.encAssignment.Load()
	if old != nil && old.version == snap.version {
		writeCached(w, old.body)
		return
	}
	body, err := encodeBody(AssignmentResponse{
		ID:             sess.id,
		Version:        snap.version,
		Energy:         snap.energy,
		AssignmentHash: snap.hash,
		Assignment:     snap.assignment,
	})
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	s.storeEnc(sess, &sess.encAssignment, old, &encEntry{version: snap.version, body: body})
	writeCached(w, body)
}

// handleMetrics implements GET /v1/networks/{id}/metrics.  Metric evaluation
// reads the session network, so it runs under the writer slot (consistency
// with the snapshot is guaranteed because snapshots are published under the
// same slot).  A request whose (version, entry, target) body is already
// encoded is served from the cache without touching the slot at all — the
// bytes describe exactly the published version the request loaded, the same
// consistency the lock-free assignment read offers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sess, snap0, ok := s.loadSession(w, r, true)
	if !ok {
		return
	}
	rawEntry := r.URL.Query().Get("entry")
	rawTarget := r.URL.Query().Get("target")
	encKey := rawEntry + "\x00" + rawTarget
	if e := sess.encMetrics.Load(); e != nil && e.version == snap0.version && e.key == encKey {
		writeCached(w, e.body)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	if err := sess.lock(ctx); err != nil {
		s.writeFailure(w, err)
		return
	}
	resp, err := func() (MetricsResponse, error) {
		defer sess.unlock()
		if sess.closed {
			return MetricsResponse{}, errSessionClosed
		}
		if err := s.healPending(ctx, sess); err != nil {
			return MetricsResponse{}, err
		}
		snap := sess.snap.Load()
		hosts := sess.net.Hosts()
		entry, target, err := resolveEndpoints(sess.net, hosts,
			netmodel.HostID(rawEntry), netmodel.HostID(rawTarget))
		if err != nil {
			return MetricsResponse{}, err
		}
		// The computation is pure in (snapshot version, entry, target):
		// polling clients are served from the memoised result without
		// recomputing graph-wide metrics on every request.
		if c := sess.metricsCache; c != nil && c.Version == snap.version && c.Entry == entry && c.Target == target {
			return *c, nil
		}
		// Graph-wide metric evaluation is heavy work: take a scheduler grant
		// like every solve and assessment batch.
		done, err := s.admit(ctx, sess)
		if err != nil {
			return MetricsResponse{}, err
		}
		defer done()
		pc, err := core.PairwiseSimilarityCost(sess.net, sess.sim, snap.assignment)
		if err != nil {
			return MetricsResponse{}, err
		}
		rich, err := metrics.Richness(sess.net, snap.assignment)
		if err != nil {
			return MetricsResponse{}, err
		}
		effort, err := metrics.Effort(sess.net, snap.assignment, sess.sim, metrics.EffortConfig{
			Entry:  entry,
			Target: target,
		})
		if err != nil {
			return MetricsResponse{}, err
		}
		resp := MetricsResponse{
			ID:           sess.id,
			Version:      snap.version,
			Hosts:        snap.hosts,
			Links:        snap.links,
			Energy:       snap.energy,
			PairwiseCost: pc,
			D1:           rich.Overall,
			D2:           effort.LeastEffort,
			D3:           effort.AverageEffort,
			Entry:        entry,
			Target:       target,
		}
		sess.metricsCache = &resp
		return resp, nil
	}()
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	// resp.Version may be newer than the snapshot loaded before the lock
	// (lazy heal publishes): the entry is keyed by the version it encodes.
	old := sess.encMetrics.Load()
	body, err := encodeBody(resp)
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	s.storeEnc(sess, &sess.encMetrics, old, &encEntry{version: resp.Version, key: encKey, body: body})
	writeCached(w, body)
}

// resolveEndpoints validates (or defaults) an entry/target host pair.
func resolveEndpoints(net *netmodel.Network, hosts []netmodel.HostID, entry, target netmodel.HostID) (netmodel.HostID, netmodel.HostID, error) {
	if len(hosts) < 2 {
		return "", "", errors.New("network has fewer than 2 hosts")
	}
	if entry == "" {
		entry = hosts[0]
	}
	if target == "" {
		target = hosts[len(hosts)-1]
	}
	for _, h := range [2]netmodel.HostID{entry, target} {
		if _, ok := net.Host(h); !ok {
			return "", "", fmt.Errorf("unknown host %q", h)
		}
	}
	return entry, target, nil
}

// parseKnowledge maps the API's knowledge names onto the adversary levels.
func parseKnowledge(name string) (adversary.Knowledge, error) {
	switch name {
	case "", "full":
		return adversary.KnowledgeFull, nil
	case "partial":
		return adversary.KnowledgePartial, nil
	case "none":
		return adversary.KnowledgeNone, nil
	default:
		return 0, fmt.Errorf("unknown knowledge %q (known: none, partial, full)", name)
	}
}

// parseMode maps the API's engine names onto the attacksim modes.
func parseMode(name string) (attacksim.Mode, error) {
	switch name {
	case "", "tick":
		return attacksim.ModeTick, nil
	case "event":
		return attacksim.ModeEvent, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (known: tick, event)", name)
	}
}

// handleAssess implements POST /v1/networks/{id}/assess: compile an attack
// campaign against the current assignment under the writer slot (compilation
// reads the network), then run the Monte-Carlo batch outside it — the
// compiled campaign is immutable, so concurrent deltas proceed while the
// batch executes on a pool token.
func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	sess, _, ok := s.loadSession(w, r, true)
	if !ok {
		return
	}
	var req AssessRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeFailure(w, err)
		return
	}
	knowledge, err := parseKnowledge(req.Knowledge)
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 500
	}
	if runs > s.cfg.MaxAssessRuns {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("runs %d exceeds the server cap %d", runs, s.cfg.MaxAssessRuns))
		return
	}
	seed := sess.seed
	if req.Seed != nil {
		seed = *req.Seed
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	if err := sess.lock(ctx); err != nil {
		s.writeFailure(w, err)
		return
	}
	campaign, version, err := func() (*attacksim.Campaign, uint64, error) {
		defer sess.unlock()
		if sess.closed {
			return nil, 0, errSessionClosed
		}
		if err := s.healPending(ctx, sess); err != nil {
			return nil, 0, err
		}
		snap := sess.snap.Load()
		entry, target, err := resolveEndpoints(sess.net, sess.net.Hosts(), req.Entry, req.Target)
		if err != nil {
			return nil, 0, err
		}
		// A campaign is a pure function of (snapshot version, campaign
		// shape): re-assessing the same state skips adversary evaluation and
		// compilation entirely.  Campaigns are immutable and safe to run
		// concurrently (per-worker scratch, per-run derived RNG), so handing
		// the cached one to a second request is exactly as deterministic as
		// recompiling it.
		key := assessKey{
			entry:     entry,
			target:    target,
			knowledge: knowledge,
			pAvg:      req.PAvg,
			runs:      runs,
			maxTicks:  req.MaxTicks,
			seed:      seed,
			exploit:   exploitKey(req.ExploitServices),
		}
		if c := sess.assessCache; c != nil && c.version == snap.version && c.key == key {
			return c.campaign, snap.version, nil
		}
		ev, err := adversary.New(sess.net, snap.assignment, sess.sim)
		if err != nil {
			return nil, 0, err
		}
		campaign, err := ev.Compile(adversary.Config{
			Entry:           entry,
			Target:          target,
			Knowledge:       knowledge,
			PAvg:            req.PAvg,
			ExploitServices: req.ExploitServices,
			Runs:            runs,
			MaxTicks:        req.MaxTicks,
			Seed:            seed,
		})
		if err != nil {
			return nil, 0, err
		}
		sess.assessCache = &assessCacheEntry{version: snap.version, key: key, campaign: campaign}
		return campaign, snap.version, nil
	}()
	if err != nil {
		s.writeFailure(w, err)
		return
	}

	start := time.Now()
	res, err := func() (attacksim.Result, error) {
		done, err := s.admit(ctx, sess)
		if err != nil {
			return attacksim.Result{}, err
		}
		defer done()
		return campaign.RunBatch(ctx, attacksim.BatchOptions{Mode: mode})
	}()
	if err != nil {
		s.writeFailure(w, err)
		return
	}
	modeName := "tick"
	if mode == attacksim.ModeEvent {
		modeName = "event"
	}
	writeJSON(w, http.StatusOK, AssessResponse{
		ID:           sess.id,
		Version:      version,
		Knowledge:    knowledge.String(),
		Mode:         modeName,
		Runs:         res.Runs,
		MTTC:         res.MTTC,
		MedianTTC:    res.MedianTTC,
		P90TTC:       res.P90TTC,
		StdTTC:       res.StdTTC,
		SuccessRate:  res.SuccessRate,
		MeanInfected: res.MeanInfected,
		WallMS:       float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:   "ok",
		Sessions: s.store.len(),
		Draining: s.draining.Load(),
		Counters: s.Stats(),
	}
	if s.cfg.Persist != nil {
		st := s.cfg.Persist.Stats()
		resp.Persistence = &st
		if st.Degraded {
			resp.Status = "degraded"
		}
	}
	if s.cfg.Replication != nil || s.cfg.Replicator != nil || s.role.Load() != rolePrimary {
		resp.Replication = s.replicationHealth()
	}
	writeJSON(w, http.StatusOK, resp)
}

package serve

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"netdiversity/internal/adversary"
	"netdiversity/internal/attacksim"
	"netdiversity/internal/netmodel"
)

// Version-keyed encoded-response caches: the serving plane's read endpoints
// are pure functions of the published snapshot (plus, for metrics, the
// entry/target pair), so their JSON bodies are marshaled once per version
// and every steady-state GET is a copy of pre-encoded bytes — zero marshal
// work, near-zero allocations.  Entries carry the version they encode and
// are checked against the snapshot loaded by the request, which is the
// invalidation rule: a version bump makes every older entry unreachable the
// instant the new snapshot is published (readers that loaded the old
// snapshot before the bump may still serve the old bytes, exactly as they
// would have served the old snapshot itself — version and body always
// match).  Slots are single-entry atomic pointers updated by CAS, so
// concurrent misses race benignly: both encode, one wins the slot, both
// serve their own correct bytes.
//
// The server bounds the total cached bytes across all sessions
// (Config.MaxCachedBytes); when the budget is exhausted new entries are
// simply not cached — responses fall back to per-request encoding, never
// failing.  A session's entries are charged to the budget while it lives
// and returned when it is deleted.

// encEntry is one pre-encoded response body, valid for exactly one
// (version, key) pair.  The body includes the trailing newline, matching
// the json.Encoder framing of the uncached path byte for byte.
type encEntry struct {
	version uint64
	// key distinguishes entries whose response depends on request
	// parameters beyond the version (the metrics entry/target pair);
	// empty for assignment and summary bodies.
	key  string
	body []byte
}

// encodeBody marshals a response the way writeJSON frames it (compact JSON
// plus a trailing newline), so cached and uncached responses are
// byte-identical.
func encodeBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// jsonContentType is the shared Content-Type header value of cached
// responses, assigned directly (the key is already canonical) so the
// steady-state cached read allocates nothing at all.
var jsonContentType = []string{"application/json"}

// writeCached writes a pre-encoded JSON body.
func writeCached(w http.ResponseWriter, body []byte) {
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// storeEnc publishes a freshly encoded body into a session cache slot,
// charging the server-wide budget.  old must be the entry the caller loaded
// from the slot before encoding (nil on a cold slot): the CAS both
// serialises racing writers — only the winner charges the budget — and
// makes the charge exact, replacing old's bytes with the new entry's.
// Entries that would overflow the budget are dropped; the caller already
// holds the encoded body and serves it regardless.
func (s *Server) storeEnc(sess *session, slot *atomic.Pointer[encEntry], old, e *encEntry) {
	delta := int64(len(e.body))
	if old != nil {
		delta -= int64(len(old.body))
	}
	if delta > 0 && s.cachedBytes.Load()+delta > s.cfg.MaxCachedBytes {
		return
	}
	if slot.CompareAndSwap(old, e) {
		s.cachedBytes.Add(delta)
		sess.cachedBytes.Add(delta)
	}
}

// dropCaches returns a deleted session's cached bytes to the server budget.
// A reader racing the deletion can re-populate a slot afterwards; those few
// stranded bytes stay charged — bounded by one response body per deleted
// session, and only on the race.
func (s *Server) dropCaches(sess *session) {
	if n := sess.cachedBytes.Swap(0); n != 0 {
		s.cachedBytes.Add(-n)
	}
}

// CachedBytes reports the bytes currently charged to the encoded-response
// cache budget (exposed for tests and observability).
func (s *Server) CachedBytes() int64 { return s.cachedBytes.Load() }

// assessKey is the campaign shape of an assess request: every compile input
// except the network and assignment, which the version covers.
type assessKey struct {
	entry, target netmodel.HostID
	knowledge     adversary.Knowledge
	pAvg          float64
	runs          int
	maxTicks      int
	seed          int64
	// exploit is the canonical ("\x00"-joined, order-preserving) exploit
	// service list.
	exploit string
}

// assessCacheEntry memoises one compiled campaign.  Campaigns are immutable
// and every run's RNG derives from the campaign seed and run index, so
// re-running a cached campaign is exactly as deterministic as recompiling.
type assessCacheEntry struct {
	version  uint64
	key      assessKey
	campaign *attacksim.Campaign
}

// exploitKey renders the canonical exploit-service list of an assessKey.
func exploitKey(services []netmodel.ServiceID) string {
	if len(services) == 0 {
		return ""
	}
	n := 0
	for _, s := range services {
		n += len(s) + 1
	}
	b := make([]byte, 0, n)
	for _, s := range services {
		b = append(b, s...)
		b = append(b, 0)
	}
	return string(b)
}

package serve

import (
	"fmt"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
	"netdiversity/internal/wal"
)

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error errorInfo `json:"error"`
}

// errorInfo is the machine-readable error: a stable code plus a
// human-readable message.
type errorInfo struct {
	// Code is one of: bad_request, not_found, conflict, too_many_sessions,
	// timeout, draining, internal.
	Code string `json:"code"`
	// Message describes the failure.
	Message string `json:"message"`
}

// SimilaritySpec selects the similarity table of a session at create time.
// Omitted (nil) or kind "paper" uses the paper's published tables; kind
// "custom" builds a table over the products of the submitted spec from the
// given entries, with Default for every unlisted pair.
type SimilaritySpec struct {
	// Kind is "paper" (default) or "custom".
	Kind string `json:"kind,omitempty"`
	// Default is the similarity of product pairs not listed in Entries
	// (custom tables only).
	Default float64 `json:"default,omitempty"`
	// Entries are the custom pairwise similarities (symmetric; listing one
	// direction is enough).
	Entries []SimilarityEntry `json:"entries,omitempty"`
}

// SimilarityEntry is one pairwise similarity of a custom table.
type SimilarityEntry struct {
	A   string  `json:"a"`
	B   string  `json:"b"`
	Sim float64 `json:"sim"`
}

// buildSimilarity resolves a SimilaritySpec against the products of a
// network.
func buildSimilarity(spec *SimilaritySpec, net *netmodel.Network) (*vulnsim.SimilarityTable, error) {
	if spec == nil || spec.Kind == "" || spec.Kind == "paper" {
		if spec != nil && (len(spec.Entries) > 0 || spec.Default != 0) {
			return nil, fmt.Errorf("similarity entries require kind \"custom\"")
		}
		return vulnsim.PaperSimilarity(), nil
	}
	if spec.Kind != "custom" {
		return nil, fmt.Errorf("unknown similarity kind %q (known: paper, custom)", spec.Kind)
	}
	products := net.Products()
	names := make([]string, len(products))
	for i, p := range products {
		names[i] = string(p)
	}
	table := vulnsim.NewSimilarityTable(names)
	if spec.Default != 0 {
		if err := table.SetDefault(spec.Default); err != nil {
			return nil, err
		}
	}
	for i, e := range spec.Entries {
		if err := table.Set(e.A, e.B, e.Sim, 0); err != nil {
			return nil, fmt.Errorf("similarity entry %d: %w", i, err)
		}
	}
	return table, nil
}

// CreateRequest is the body of POST /v1/networks.
type CreateRequest struct {
	// ID optionally names the session; omitted, the server assigns net-<n>.
	ID string `json:"id,omitempty"`
	// Spec describes the network (and optional constraints).
	Spec netmodel.Spec `json:"spec"`
	// Solver is a solver-registry name; default "trws".
	Solver string `json:"solver,omitempty"`
	// Seed drives every randomised stage of the session; with a fixed seed
	// the session's responses are deterministic.
	Seed int64 `json:"seed,omitempty"`
	// MaxIterations bounds the solver iterations (default 100, capped by the
	// server's Config.MaxIterations).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Similarity selects the similarity table (default: the paper tables).
	Similarity *SimilaritySpec `json:"similarity,omitempty"`
}

// NetworkSummary is the session state common to several responses.
type NetworkSummary struct {
	ID             string  `json:"id"`
	Hosts          int     `json:"hosts"`
	Links          int     `json:"links"`
	Solver         string  `json:"solver"`
	Seed           int64   `json:"seed"`
	Version        uint64  `json:"version"`
	Energy         float64 `json:"energy"`
	AssignmentHash string  `json:"assignment_hash"`
}

// CreateResponse is the body of a successful POST /v1/networks.
type CreateResponse struct {
	NetworkSummary
	Iterations           int      `json:"iterations"`
	Converged            bool     `json:"converged"`
	WallMS               float64  `json:"wall_ms"`
	ConstraintViolations []string `json:"constraint_violations,omitempty"`
}

// ListResponse is the body of GET /v1/networks.
type ListResponse struct {
	Networks []NetworkSummary `json:"networks"`
}

// DeltaResponse is the body of a successful POST /v1/networks/{id}/deltas.
type DeltaResponse struct {
	ID             string  `json:"id"`
	Version        uint64  `json:"version"`
	Ops            int     `json:"ops"`
	Hosts          int     `json:"hosts"`
	Energy         float64 `json:"energy"`
	AssignmentHash string  `json:"assignment_hash"`
	// Incremental is false when the engine fell back to a cold solve;
	// Rebuilt reports a tombstone-pressure compacting rebuild.
	Incremental bool `json:"incremental"`
	Rebuilt     bool `json:"rebuilt,omitempty"`
	// DirtyNodes/LiveNodes describe the warm solve's frontier.
	DirtyNodes int `json:"dirty_nodes"`
	LiveNodes  int `json:"live_nodes"`
	// ChangedHosts counts surviving hosts whose assignment changed.
	ChangedHosts int `json:"changed_hosts"`
	// Coalesced is the number of deltas that landed together in the batch
	// this request was folded into (omitted when the delta landed alone).
	// Version reports the post-batch version either way.
	Coalesced int     `json:"coalesced,omitempty"`
	WallMS    float64 `json:"wall_ms"`
}

// AssignmentResponse is the body of GET /v1/networks/{id}/assignment.
type AssignmentResponse struct {
	ID             string               `json:"id"`
	Version        uint64               `json:"version"`
	Energy         float64              `json:"energy"`
	AssignmentHash string               `json:"assignment_hash"`
	Assignment     *netmodel.Assignment `json:"assignment"`
}

// MetricsResponse is the body of GET /v1/networks/{id}/metrics: the
// objective value plus the d1/d2/d3 diversity metrics of the current
// assignment.
type MetricsResponse struct {
	ID           string  `json:"id"`
	Version      uint64  `json:"version"`
	Hosts        int     `json:"hosts"`
	Links        int     `json:"links"`
	Energy       float64 `json:"energy"`
	PairwiseCost float64 `json:"pairwise_cost"`
	// D1 is the richness/Shannon-effective-number diversity (overall mean
	// over services).
	D1 float64 `json:"d1"`
	// D2 and D3 are the least and average attacking-effort metrics over
	// entry→target attack paths; Entry/Target echo the evaluated pair
	// (query parameters, defaulting to the first and last host).
	D2     float64         `json:"d2"`
	D3     float64         `json:"d3"`
	Entry  netmodel.HostID `json:"entry"`
	Target netmodel.HostID `json:"target"`
}

// AssessRequest is the body of POST /v1/networks/{id}/assess.
type AssessRequest struct {
	// Entry and Target bound the campaign; default first and last host.
	Entry  netmodel.HostID `json:"entry,omitempty"`
	Target netmodel.HostID `json:"target,omitempty"`
	// Knowledge is the attacker model: "none", "partial" or "full"
	// (default "full").
	Knowledge string `json:"knowledge,omitempty"`
	// PAvg is the base zero-day propagation rate (default 0.2).
	PAvg float64 `json:"p_avg,omitempty"`
	// Runs and MaxTicks bound the campaign (defaults 500 / 500, Runs capped
	// by the server's Config.MaxAssessRuns).
	Runs     int `json:"runs,omitempty"`
	MaxTicks int `json:"max_ticks,omitempty"`
	// Seed makes the campaign deterministic; default: the session seed.
	Seed *int64 `json:"seed,omitempty"`
	// Mode selects the engine: "tick" (default) or "event".
	Mode string `json:"mode,omitempty"`
	// ExploitServices restricts the attacker's zero-day exploits (default:
	// all services).
	ExploitServices []netmodel.ServiceID `json:"exploit_services,omitempty"`
}

// AssessResponse is the body of a successful POST /v1/networks/{id}/assess:
// the MTTC statistics of the Monte-Carlo campaign against the session's
// current assignment.
type AssessResponse struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	// Knowledge, Mode and Runs echo the executed campaign.
	Knowledge string `json:"knowledge"`
	Mode      string `json:"mode"`
	Runs      int    `json:"runs"`
	// MTTC statistics (ticks to compromise; failed runs count as MaxTicks).
	MTTC         float64 `json:"mttc"`
	MedianTTC    float64 `json:"median_ttc"`
	P90TTC       float64 `json:"p90_ttc"`
	StdTTC       float64 `json:"std_ttc"`
	SuccessRate  float64 `json:"success_rate"`
	MeanInfected float64 `json:"mean_infected"`
	WallMS       float64 `json:"wall_ms"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok", or "degraded" while persistence is shedding writes.
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
	Draining bool   `json:"draining,omitempty"`
	// Counters are the server's backpressure counters since start: total
	// requests, 429 session-limit rejections, 503 drain rejections and 504
	// deadline hits.
	Counters Stats `json:"counters"`
	// Persistence reports the persistence plane (fsync policy, WAL lag,
	// snapshot and sync-error counters); omitted when divd runs memory-only.
	Persistence *wal.Stats `json:"persistence,omitempty"`
	// Replication reports the replication plane (role, follower lag,
	// anti-entropy state); omitted when the node neither replicates nor
	// follows.
	Replication *ReplicationStats `json:"replication,omitempty"`
}

// ReplicationStats is the healthz replication block.  Role and
// WritesRejected are filled by the server; the transport-side fields come
// from the Config.Replication callback (see cmd/divd).
type ReplicationStats struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Primary is the primary's base URL (followers only).
	Primary string `json:"primary,omitempty"`
	// WritesRejected counts state-changing requests rejected with
	// not_primary since start.
	WritesRejected int64 `json:"writes_rejected,omitempty"`
	// Followers reports push-side lag per attached follower (primaries).
	Followers []FollowerLag `json:"followers,omitempty"`
	// AntiEntropy reports the pull loop's state (followers).
	AntiEntropy *AntiEntropyStats `json:"anti_entropy,omitempty"`
}

// FollowerLag is one attached follower's push-side replication lag.
type FollowerLag struct {
	URL string `json:"url"`
	// QueuedRecords/QueuedBytes measure the unsent push backlog.
	QueuedRecords int   `json:"queued_records"`
	QueuedBytes   int64 `json:"queued_bytes,omitempty"`
	// SentRecords counts envelopes delivered; DroppedRecords counts queue
	// overflow drops (repaired by anti-entropy).
	SentRecords    int64 `json:"sent_records"`
	DroppedRecords int64 `json:"dropped_records,omitempty"`
	// Errors counts failed pushes; LastError is the most recent failure.
	Errors    int64  `json:"errors,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// AntiEntropyStats is the follower's pull-loop state.
type AntiEntropyStats struct {
	// Rounds counts completed anti-entropy rounds; LastRoundUnixMS stamps
	// the most recent one.
	Rounds          int64 `json:"rounds"`
	LastRoundUnixMS int64 `json:"last_round_unix_ms,omitempty"`
	// InSync reports whether the last round ended with every session at the
	// primary's listed version and hash.
	InSync bool `json:"in_sync"`
	// RecordsApplied counts records applied through patch replay (push and
	// pull combined); RecordsFetched and SnapshotsFetched count pull-side
	// transfers; BadRecords counts records rejected before or during apply.
	RecordsApplied   int64 `json:"records_applied"`
	RecordsFetched   int64 `json:"records_fetched,omitempty"`
	SnapshotsFetched int64 `json:"snapshots_fetched,omitempty"`
	BadRecords       int64 `json:"bad_records,omitempty"`
	// PendingRecords counts buffered out-of-order records awaiting their
	// chain predecessors.
	PendingRecords int `json:"pending_records,omitempty"`
	// Errors counts failed rounds; LastError is the most recent failure.
	Errors    int64  `json:"errors,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// PromoteResponse is the body of a successful POST /v1/promote.
type PromoteResponse struct {
	// Role is the node's role after promotion (always "primary").
	Role string `json:"role"`
	// Sessions counts replica sessions made writable.
	Sessions int `json:"sessions"`
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/wal"
)

// Persistence integration: when Config.Persist is set, every publish of
// writer-visible state is journaled before it becomes visible — create
// writes the session's initial snapshot, each coalesced delta batch appends
// one WAL record, and the ack only goes out after the record reached the
// fsync policy's durability point.  Reads never touch the WAL.
//
// Degradation: the first persistence failure flips the manager into sticky
// degraded mode.  State-changing requests are shed with 503 +
// Retry-After (rejectDegraded), while lock-free reads keep serving the last
// durably-acked snapshot — in-memory state that failed to journal is never
// installed, so readers cannot observe acknowledged-but-lost writes.

// persistFailed wraps a persistence error so writeFailure maps it onto the
// 503 persistence_degraded response.
func persistFailed(err error) error {
	if errors.Is(err, wal.ErrDegraded) {
		return err
	}
	return fmt.Errorf("%w: %v", wal.ErrDegraded, err)
}

// rejectDegraded sheds state-changing requests while persistence is
// degraded, mirroring rejectDraining: 503 with Retry-After, counted in the
// 503 backpressure counter.
func (s *Server) rejectDegraded(w http.ResponseWriter) bool {
	if s.cfg.Persist == nil || !s.cfg.Persist.Degraded() {
		return false
	}
	s.stats.rejected503.Add(1)
	w.Header().Set("Retry-After", retryAfterSeconds)
	writeError(w, http.StatusServiceUnavailable, "persistence_degraded",
		"persistence is degraded; state-changing requests are disabled until restart")
	return true
}

// walSnapshot serializes the session's full state at a published snapshot —
// the payload of both the create-time snapshot and every compaction.
// Called under the writer slot; snap.assignment is immutable post-build, so
// sharing the pointer with the marshaller is safe.
func (s *session) walSnapshot(snap snapshot) (*wal.SessionSnapshot, error) {
	var simRaw json.RawMessage
	if s.simSpec != nil {
		b, err := json.Marshal(s.simSpec)
		if err != nil {
			return nil, fmt.Errorf("serve: encode similarity spec: %w", err)
		}
		simRaw = b
	}
	return &wal.SessionSnapshot{
		ID:            s.id,
		Solver:        s.solver,
		Seed:          s.seed,
		MaxIterations: s.maxIter,
		Version:       snap.version,
		Energy:        snap.energy,
		Hash:          snap.hash,
		Spec:          netmodel.ToSpec(s.net, s.cs),
		Assignment:    snap.assignment,
		Similarity:    simRaw,
	}, nil
}

// journalPublish builds and journals the record that takes the session from
// prev to snap: the batch's deltas (plus any pending un-journaled deltas
// from a timed-out batch) and the assignment diff.  On success it also
// writes a compacted snapshot when the log is due for one — best effort,
// since the record itself is already durable.  A nil error is the caller's
// licence to install the snapshot and ack; the returned record (non-nil
// whenever persistence or replication needs one) is what the caller hands to
// the Replicator hook after install.  An error means nothing was made
// visible and the manager is degraded.  Called under the writer slot.
func (s *Server) journalPublish(sess *session, prev *snapshot, snap snapshot, batch []*deltaReq) (*wal.Record, error) {
	if sess.wlog == nil && !sess.replicated {
		return nil, nil
	}
	recDeltas := make([]netmodel.Delta, 0, len(sess.pendingJournal)+len(batch))
	recDeltas = append(recDeltas, sess.pendingJournal...)
	for _, rq := range batch {
		recDeltas = append(recDeltas, rq.delta)
	}
	var prevVersion uint64
	var prevAssignment *netmodel.Assignment
	if prev != nil {
		prevVersion, prevAssignment = prev.version, prev.assignment
	}
	changed, removed := snap.assignment.DiffHosts(prevAssignment)
	rec := &wal.Record{
		PrevVersion: prevVersion,
		Version:     snap.version,
		Deltas:      recDeltas,
		Changed:     changed,
		Removed:     removed,
		Energy:      snap.energy,
		Hash:        snap.hash,
	}
	if sess.wlog != nil {
		if err := sess.wlog.Append(rec); err != nil {
			return nil, persistFailed(err)
		}
	}
	// The record is durable (or the server is memory-only and the record
	// exists purely for replication): un-journaled history is now covered.
	sess.pendingJournal = nil
	if sess.wlog != nil && sess.wlog.ShouldSnapshot() {
		if wsnap, err := sess.walSnapshot(snap); err == nil {
			// A failed compaction degrades the manager but does not lose the
			// record the client is about to be acked for.
			sess.wlog.WriteSnapshot(wsnap) //nolint:errcheck // degradation recorded by the manager
		}
	}
	return rec, nil
}

// rememberUnjournaled records a batch whose network mutations landed without
// a journaled record (re-optimisation failed mid-solve, or the append itself
// failed): the deltas are kept so the next successful publish journals the
// complete network history.  A shallow Delta copy suffices — recycled
// requests drop their Ops reference without reusing the backing array.
// Replicated memory-only sessions remember too: replication records must
// carry the full delta history or follower networks diverge.  Called under
// the writer slot.
func (sess *session) rememberUnjournaled(batch []*deltaReq) {
	if sess.wlog == nil && !sess.replicated {
		return
	}
	for _, rq := range batch {
		sess.pendingJournal = append(sess.pendingJournal, rq.delta)
	}
}

// Restore registers a session recovered by wal.Recover: the optimiser is
// rebuilt around the recovered network and seeded with the recovered
// assignment (no re-solve — the recovered state is served verbatim, which is
// what lets the crash-recovery smoke assert identical assignment hashes),
// and the session resumes journaling on the recovered log handle.
func (s *Server) Restore(rec *wal.Recovered) error {
	meta := rec.Snapshot
	if !validSessionID(meta.ID) {
		return fmt.Errorf("serve: invalid recovered session id %q", meta.ID)
	}
	solver, err := core.ParseSolver(meta.Solver)
	if err != nil {
		return fmt.Errorf("serve: session %s: %w", meta.ID, err)
	}
	var simSpec *SimilaritySpec
	if len(meta.Similarity) > 0 {
		simSpec = &SimilaritySpec{}
		if err := json.Unmarshal(meta.Similarity, simSpec); err != nil {
			return fmt.Errorf("serve: session %s: decode similarity spec: %w", meta.ID, err)
		}
	}
	sim, err := buildSimilarity(simSpec, rec.Net)
	if err != nil {
		return fmt.Errorf("serve: session %s: %w", meta.ID, err)
	}
	sess := &session{
		id:      meta.ID,
		solver:  meta.Solver,
		seed:    meta.Seed,
		writer:  make(chan struct{}, 1),
		net:     rec.Net,
		cs:      rec.Constraints,
		sim:     sim,
		simSpec: simSpec,
		maxIter: meta.MaxIterations,
		wlog:    rec.Log,
	}
	sess.replicated = s.cfg.Replicator != nil
	opts := core.Options{
		Solver:        solver,
		MaxIterations: meta.MaxIterations,
		Seed:          meta.Seed,
		Checkpoint:    sess.checkpoint,
	}
	opt, err := core.NewOptimizer(rec.Net, sim, opts)
	if err != nil {
		return fmt.Errorf("serve: session %s: %w", meta.ID, err)
	}
	if rec.Constraints != nil && !rec.Constraints.Empty() {
		if err := opt.SetConstraints(rec.Constraints); err != nil {
			return fmt.Errorf("serve: session %s: %w", meta.ID, err)
		}
	}
	opt.RestoreAssignment(meta.Assignment, meta.Energy)
	sess.opt = opt
	sess.writer <- struct{}{} // pre-held until the recovered snapshot is published
	if err := s.store.put(sess); err != nil {
		sess.unlock()
		return fmt.Errorf("serve: session %s: %w", meta.ID, err)
	}
	sess.install(snapshot{
		version:    meta.Version,
		energy:     meta.Energy,
		assignment: meta.Assignment.Clone(),
		hash:       meta.Hash,
		hosts:      rec.Net.NumHosts(),
		links:      rec.Net.NumLinks(),
	})
	if rep := s.cfg.Replicator; rep != nil {
		rep.SessionCreated(meta)
	}
	sess.unlock()
	return nil
}

package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"netdiversity/internal/netmodel"
)

// Delta coalescing: when deltas queue behind a session's writer slot, the
// slot holder drains the whole queue and lands it through one batch apply +
// one warm re-optimisation instead of N, turning write-side queueing under
// concurrent load into linear amortised cost.
//
// The mechanism is leader/follower.  Every delta request enqueues itself on
// the session's pending queue and then competes for the writer slot.  The
// winner (leader) drains the queue — its own request plus everything that
// piled up — validates each delta against the batch's running overlay
// (netmodel.BatchChecker, preserving the per-delta all-or-nothing
// contract), applies the accepted deltas through core's batch entry point,
// re-optimises once, publishes one snapshot whose version advances by the
// accepted count (so coalesced and serial runs agree on the final version),
// and acks every drained request before releasing the slot.  Losers either
// find their request already acked when they get the slot, or time out:
// a request withdrawn before any leader claimed it was never applied (the
// classic lock-timeout 504), while a request already claimed by a running
// leader may still land after its client got 504 — exactly the mid-solve
// timeout semantics of the serial path, healed lazily via pendingReopt.

// deltaReq states: a request starts waiting, is claimed by the leader that
// drains it (which then guarantees exactly one ack), or is withdrawn by its
// own handler on a pre-claim timeout (never applied, skipped by leaders).
const (
	reqWaiting int32 = iota
	reqClaimed
	reqWithdrawn
)

// deltaReq is one queued delta request.
type deltaReq struct {
	delta netmodel.Delta
	state atomic.Int32
	// done carries the single outcome; buffered so the leader's ack never
	// blocks on a handler that already gave up.
	done chan deltaOutcome
}

// deltaOutcome is the ack a leader delivers for a claimed request.
type deltaOutcome struct {
	resp DeltaResponse
	err  error
}

// deltaReqPool recycles request structs (and their ack channels) across delta
// requests.  Only the handler that consumed a request's ack may recycle it:
// at that point the ack channel is empty again and no leader will ever touch
// the struct — a request abandoned on timeout is simply left to the GC.
var deltaReqPool = sync.Pool{
	New: func() any { return &deltaReq{done: make(chan deltaOutcome, 1)} },
}

func newDeltaReq(d netmodel.Delta) *deltaReq {
	rq := deltaReqPool.Get().(*deltaReq)
	rq.delta = d
	rq.state.Store(reqWaiting)
	return rq
}

// recycle returns a request to the pool.  Call only after reading the ack.
func (rq *deltaReq) recycle() {
	rq.delta = netmodel.Delta{}
	deltaReqPool.Put(rq)
}

func (rq *deltaReq) ack(resp DeltaResponse, err error) {
	rq.done <- deltaOutcome{resp: resp, err: err}
}

// deltaQueue is a session's pending coalesced-delta queue.
type deltaQueue struct {
	mu      sync.Mutex
	pending []*deltaReq
}

// enqueue appends a request to the queue.
func (q *deltaQueue) enqueue(rq *deltaReq) {
	q.mu.Lock()
	q.pending = append(q.pending, rq)
	q.mu.Unlock()
}

// drain takes the whole queue and claims every request still waiting;
// withdrawn requests are dropped.  Called only by the writer-slot holder,
// which thereby owns the acks of everything claimed.
func (q *deltaQueue) drain() []*deltaReq {
	q.mu.Lock()
	taken := q.pending
	q.pending = nil
	q.mu.Unlock()
	batch := taken[:0]
	for _, rq := range taken {
		if rq.state.CompareAndSwap(reqWaiting, reqClaimed) {
			batch = append(batch, rq)
		}
	}
	return batch
}

// runDeltaBatch is the leader's turn: drain the session's queue, validate
// each delta against the batch overlay, land the accepted set through one
// apply + one warm re-solve, and ack every claimed request.  The caller
// must hold the writer slot; runDeltaBatch releases it.
func (s *Server) runDeltaBatch(ctx context.Context, sess *session) {
	defer sess.unlock()
	batch := sess.deltas.drain()
	if len(batch) == 0 {
		// Every queued request (including the caller's own) was claimed and
		// acked by an earlier leader.
		return
	}
	ackAll := func(reqs []*deltaReq, err error) {
		for _, rq := range reqs {
			rq.ack(DeltaResponse{}, err)
		}
	}
	if sess.closed {
		ackAll(batch, errSessionClosed)
		return
	}

	// Per-delta all-or-nothing validation against the running overlay: a
	// delta is checked as if the earlier accepted deltas of the batch had
	// landed, and a rejected delta leaves the overlay untouched, so the
	// rest of the batch validates exactly as if it never existed.
	// Constraint references are only enforced by the live apply, so they
	// are pre-checked here too, like the serial path always did.
	checker := netmodel.NewBatchChecker(sess.net)
	cs := sess.opt.Constraints()
	accepted := make([]*deltaReq, 0, len(batch))
	for _, rq := range batch {
		if err := checkConstraintRefs(cs, rq.delta); err != nil {
			rq.ack(DeltaResponse{}, err)
			continue
		}
		if err := checker.Check(rq.delta); err != nil {
			rq.ack(DeltaResponse{}, err)
			continue
		}
		accepted = append(accepted, rq)
	}
	if len(accepted) == 0 {
		return
	}

	done, err := s.admit(ctx, sess)
	if err != nil {
		ackAll(accepted, err)
		return
	}
	defer done()
	// The apply slice is leader-scoped scratch: only the writer-slot holder
	// builds batches, and core does not retain the slice, so the session
	// reuses one backing array across batches (cleared after the apply so it
	// pins no delta payloads between batches).
	deltas := sess.batchScratch[:0]
	for _, rq := range accepted {
		deltas = append(deltas, rq.delta)
	}
	applyErr := sess.opt.ApplyDeltaBatch(deltas)
	clear(deltas)
	sess.batchScratch = deltas[:0]
	if applyErr != nil {
		// Every delta pre-checked, so only an engine-level failure lands
		// here; the network may hold a prefix of the batch — mark the
		// session pending so the next consistency-requiring request heals.
		// In persist mode the whole batch is remembered for the journal:
		// conservative (replay may over-apply the unapplied suffix, which
		// recovery's final validation catches by skipping the session) but
		// never silently under-journaled.
		sess.pendingReopt = true
		sess.rememberUnjournaled(accepted)
		ackAll(accepted, applyErr)
		return
	}
	// From here the network is mutated; if the re-optimisation fails
	// (deadline mid-solve) the flag makes the next consistency-requiring
	// request heal the session lazily — the dirty set survives in the
	// optimiser.  Identical to the serial path.  The mutations are not yet
	// journaled either, so the batch joins the pending journal and the next
	// successful publish's record carries it.
	sess.pendingReopt = true
	res, err := sess.opt.Reoptimize(ctx)
	if err != nil {
		sess.rememberUnjournaled(accepted)
		ackAll(accepted, err)
		return
	}
	prev := sess.snap.Load()
	snap := sess.buildSnapshot(uint64(len(accepted)))
	// Durability point: the record must be on disk (per the fsync policy)
	// before the snapshot becomes visible or any ack goes out.  On failure
	// nothing is installed — readers keep the pre-batch state, the manager
	// is degraded, and pendingReopt stays set so consistency-requiring
	// requests fail instead of observing the un-journaled network.
	rec, err := s.journalPublish(sess, prev, snap, accepted)
	if err != nil {
		sess.rememberUnjournaled(accepted)
		ackAll(accepted, err)
		return
	}
	sess.pendingReopt = false
	sess.install(snap)
	if rep := s.cfg.Replicator; rep != nil && rec != nil {
		rep.RecordCommitted(sess.id, rec)
	}
	changed := changedHosts(prev, snap.assignment)
	for _, rq := range accepted {
		resp := DeltaResponse{
			ID:             sess.id,
			Version:        snap.version,
			Ops:            len(rq.delta.Ops),
			Hosts:          snap.hosts,
			Energy:         snap.energy,
			AssignmentHash: snap.hash,
			Incremental:    res.Incremental,
			Rebuilt:        res.Rebuilt,
			DirtyNodes:     res.DirtyNodes,
			LiveNodes:      res.LiveNodes,
			ChangedHosts:   changed,
		}
		if len(accepted) > 1 {
			resp.Coalesced = len(accepted)
		}
		rq.ack(resp, nil)
	}
}

// checkConstraintRefs rejects remove_host ops targeting hosts the session's
// constraint set references.
func checkConstraintRefs(cs *netmodel.ConstraintSet, d netmodel.Delta) error {
	if cs == nil {
		return nil
	}
	for i, op := range d.Ops {
		if op.Op == netmodel.OpRemoveHost && cs.References(op.ID) {
			return fmt.Errorf("delta op %d: host %q is referenced by the constraint set", i, op.ID)
		}
	}
	return nil
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
)

// testSpec builds a small chain network over the paper OS products.
func testSpec(hosts int) netmodel.Spec {
	spec := netmodel.Spec{}
	for i := 0; i < hosts; i++ {
		spec.Hosts = append(spec.Hosts, netmodel.HostSpec{
			ID:       netmodel.HostID(fmt.Sprintf("h%d", i)),
			Services: []netmodel.ServiceID{"os"},
			Choices: map[netmodel.ServiceID][]netmodel.ProductID{
				"os": {"win7", "ubt1404", "osx109"},
			},
		})
		if i > 0 {
			spec.Links = append(spec.Links, netmodel.Link{
				A: netmodel.HostID(fmt.Sprintf("h%d", i-1)),
				B: netmodel.HostID(fmt.Sprintf("h%d", i)),
			})
		}
	}
	return spec
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// do performs a request and decodes the response body into out (when
// non-nil), returning the status code.
func do(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// errCode extracts the error envelope code of a non-2xx response.
func errCode(t *testing.T, method, url string, body any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var envelope errorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	return resp.StatusCode, envelope.Error.Code
}

func TestCreateDeltaAssessRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var created CreateResponse
	status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{
		Spec: testSpec(6),
		Seed: 7,
	}, &created)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	if created.ID != "net-1" || created.Hosts != 6 || created.Links != 5 || created.Version != 1 {
		t.Fatalf("create response: %+v", created)
	}
	if created.AssignmentHash == "" || created.Solver != "trws" {
		t.Fatalf("create response: %+v", created)
	}

	var got AssignmentResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/net-1/assignment", nil, &got); status != http.StatusOK {
		t.Fatalf("assignment: status %d", status)
	}
	if got.AssignmentHash != created.AssignmentHash || got.Version != 1 {
		t.Fatalf("assignment response: %+v", got)
	}
	if got.Assignment == nil || got.Assignment.Len() != 6 {
		t.Fatalf("assignment incomplete: %+v", got.Assignment)
	}

	// Apply a delta: join h6, wire it to h0.
	var dres DeltaResponse
	status = do(t, http.MethodPost, ts.URL+"/v1/networks/net-1/deltas", netmodel.Delta{Ops: []netmodel.DeltaOp{
		{Op: netmodel.OpAddHost, Host: &netmodel.HostSpec{
			ID:       "h6",
			Services: []netmodel.ServiceID{"os"},
			Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"win7", "ubt1404", "osx109"}},
		}},
		{Op: netmodel.OpAddEdge, A: "h0", B: "h6"},
	}}, &dres)
	if status != http.StatusOK {
		t.Fatalf("delta: status %d", status)
	}
	if dres.Version != 2 || dres.Hosts != 7 || !dres.Incremental || dres.Ops != 2 {
		t.Fatalf("delta response: %+v", dres)
	}

	var metrics MetricsResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/net-1/metrics", nil, &metrics); status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if metrics.D1 <= 0 || metrics.Version != 2 || metrics.Entry != "h0" {
		t.Fatalf("metrics response: %+v", metrics)
	}

	var assess AssessResponse
	status = do(t, http.MethodPost, ts.URL+"/v1/networks/net-1/assess", AssessRequest{
		Runs: 50, MaxTicks: 100,
	}, &assess)
	if status != http.StatusOK {
		t.Fatalf("assess: status %d", status)
	}
	if assess.Runs != 50 || assess.MTTC <= 0 || assess.Knowledge != "full" || assess.Mode != "tick" {
		t.Fatalf("assess response: %+v", assess)
	}

	var list ListResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks", nil, &list); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if len(list.Networks) != 1 || list.Networks[0].ID != "net-1" {
		t.Fatalf("list response: %+v", list)
	}

	if status := do(t, http.MethodDelete, ts.URL+"/v1/networks/net-1", nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete: status %d", status)
	}
	if status, code := errCode(t, http.MethodGet, ts.URL+"/v1/networks/net-1/assignment", nil); status != http.StatusNotFound || code != "not_found" {
		t.Fatalf("after delete: status %d code %s", status, code)
	}
}

// TestDeterministicResponses pins the determinism contract: the same request
// sequence against two fresh servers yields identical energies, hashes and
// MTTC statistics.
func TestDeterministicResponses(t *testing.T) {
	type outcome struct {
		createHash string
		energy     float64
		deltaHash  string
		mttc       float64
	}
	runOnce := func() outcome {
		_, ts := newTestServer(t, Config{})
		var created CreateResponse
		if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{Spec: testSpec(8), Seed: 11}, &created); status != http.StatusCreated {
			t.Fatalf("create: status %d", status)
		}
		var dres DeltaResponse
		if status := do(t, http.MethodPost, ts.URL+"/v1/networks/net-1/deltas", netmodel.Delta{Ops: []netmodel.DeltaOp{
			{Op: netmodel.OpRemoveEdge, A: "h3", B: "h4"},
			{Op: netmodel.OpAddEdge, A: "h0", B: "h4"},
		}}, &dres); status != http.StatusOK {
			t.Fatalf("delta: status %d", status)
		}
		var assess AssessResponse
		if status := do(t, http.MethodPost, ts.URL+"/v1/networks/net-1/assess", AssessRequest{Runs: 100, MaxTicks: 100, Mode: "event"}, &assess); status != http.StatusOK {
			t.Fatalf("assess: status %d", status)
		}
		return outcome{created.AssignmentHash, created.Energy, dres.AssignmentHash, assess.MTTC}
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("responses not deterministic:\n  %+v\n  %+v", a, b)
	}
}

func TestCreateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{SpecLimits: netmodel.SpecLimits{MaxHosts: 4}})

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/networks", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}

	// Unknown top-level field.
	resp, err = http.Post(ts.URL+"/v1/networks", "application/json", strings.NewReader(`{"spec":{"hosts":[]},"nonsense":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}

	// Spec over the host limit.
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{Spec: testSpec(5)}); status != http.StatusBadRequest || code != "bad_request" {
		t.Fatalf("over limit: status %d code %s", status, code)
	}

	// Unknown solver.
	if status, _ := errCode(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{Spec: testSpec(3), Solver: "gradient-descent"}); status != http.StatusBadRequest {
		t.Fatalf("unknown solver: status %d", status)
	}

	// Invalid client-chosen ID.
	if status, _ := errCode(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "no spaces allowed", Spec: testSpec(3)}); status != http.StatusBadRequest {
		t.Fatalf("invalid id: status %d", status)
	}

	// Duplicate ID conflicts.
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "twin", Spec: testSpec(3)}, nil); status != http.StatusCreated {
		t.Fatalf("first create: status %d", status)
	}
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "twin", Spec: testSpec(3)}); status != http.StatusConflict || code != "conflict" {
		t.Fatalf("duplicate id: status %d code %s", status, code)
	}
}

func TestSessionLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{Spec: testSpec(3)}, nil); status != http.StatusCreated {
		t.Fatalf("first create: status %d", status)
	}
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{Spec: testSpec(3)}); status != http.StatusTooManyRequests || code != "too_many_sessions" {
		t.Fatalf("over session limit: status %d code %s", status, code)
	}
}

func TestUnknownSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		method, path string
		body         any
	}{
		{http.MethodGet, "/v1/networks/ghost", nil},
		{http.MethodGet, "/v1/networks/ghost/assignment", nil},
		{http.MethodGet, "/v1/networks/ghost/metrics", nil},
		{http.MethodPost, "/v1/networks/ghost/deltas", netmodel.Delta{}},
		{http.MethodPost, "/v1/networks/ghost/assess", AssessRequest{}},
		{http.MethodDelete, "/v1/networks/ghost", nil},
	} {
		status, code := errCode(t, tc.method, ts.URL+tc.path, tc.body)
		if status != http.StatusNotFound || code != "not_found" {
			t.Errorf("%s %s: status %d code %s, want 404 not_found", tc.method, tc.path, status, code)
		}
	}
}

// TestDeltaAtomicity checks that a rejected delta leaves the session
// untouched: the failing op comes after a valid one, and neither lands.
func TestDeltaAtomicity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "atom", Spec: testSpec(4)}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	status, _ := errCode(t, http.MethodPost, ts.URL+"/v1/networks/atom/deltas", netmodel.Delta{Ops: []netmodel.DeltaOp{
		{Op: netmodel.OpAddEdge, A: "h0", B: "h2"},      // valid
		{Op: netmodel.OpRemoveHost, ID: "no-such-host"}, // fails
	}})
	if status != http.StatusBadRequest {
		t.Fatalf("invalid delta: status %d", status)
	}
	var got AssignmentResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/atom/assignment", nil, &got); status != http.StatusOK {
		t.Fatal("assignment read failed")
	}
	if got.Version != 1 {
		t.Fatalf("rejected delta bumped version to %d", got.Version)
	}
	// The valid prefix op must not have landed either: re-adding the same
	// edge in a valid delta must change the MRF (it would be idempotent —
	// and leave the dirty set empty — had the prefix been applied).
	var dres DeltaResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks/atom/deltas", netmodel.Delta{Ops: []netmodel.DeltaOp{
		{Op: netmodel.OpAddEdge, A: "h0", B: "h2"},
	}}, &dres); status != http.StatusOK {
		t.Fatalf("follow-up delta: status %d", status)
	}
	if dres.DirtyNodes == 0 {
		t.Fatalf("edge add was a no-op — rejected delta's prefix leaked: %+v", dres)
	}
}

// TestDeadlineMidSolve pins the 504 path: a 1000-host create with a 1ms
// request budget cannot finish its cold solve, must report timeout and must
// not leave a half-created session behind.
func TestDeadlineMidSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	gen, err := netgen.Random(netgen.RandomConfig{Hosts: 1000, Degree: 8, Services: 3, ProductsPerService: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	status, code := errCode(t, http.MethodPost, ts.URL+"/v1/networks?timeout_ms=1", CreateRequest{ID: "slow", Spec: netmodel.ToSpec(gen, nil)})
	if status != http.StatusGatewayTimeout || code != "timeout" {
		t.Fatalf("deadline mid-solve: status %d code %s, want 504 timeout", status, code)
	}
	if status, _ := errCode(t, http.MethodGet, ts.URL+"/v1/networks/slow", nil); status != http.StatusNotFound {
		t.Fatalf("timed-out session still live: status %d", status)
	}
}

// TestAutoIDSkipsSquattedName pins the allocID collision rule: a client
// squatting on "net-1" must not break auto-assigned creates.
func TestAutoIDSkipsSquattedName(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "net-1", Spec: testSpec(3)}, nil); status != http.StatusCreated {
		t.Fatal("squatting create failed")
	}
	var created CreateResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{Spec: testSpec(3)}, &created); status != http.StatusCreated {
		t.Fatalf("auto-ID create after squat: status %d", status)
	}
	if created.ID == "net-1" || created.ID == "" {
		t.Fatalf("auto-assigned ID %q collides with the squatted name", created.ID)
	}
}

// TestPendingDeltaHeals pins the 504-delta recovery path: a delta whose
// re-optimisation times out leaves the network mutated but the snapshot
// stale, and the next metrics request must heal the session (re-optimise
// lazily) instead of serving inconsistent state.  The timed-out delta is
// simulated white-box (ApplyDelta + pendingReopt under the writer slot —
// exactly the state handleDeltas leaves when Reoptimize fails) so the test
// does not depend on winning a race against a real deadline.
func TestPendingDeltaHeals(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "heal", Spec: testSpec(10), Seed: 2}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	sess, ok := srv.store.get("heal")
	if !ok {
		t.Fatal("session not in store")
	}
	sess.writer <- struct{}{}
	if err := sess.opt.ApplyDelta(netmodel.Delta{Ops: []netmodel.DeltaOp{
		{Op: netmodel.OpRemoveHost, ID: "h9"},
	}}); err != nil {
		sess.unlock()
		t.Fatal(err)
	}
	sess.pendingReopt = true
	sess.unlock()

	// The snapshot is stale (version 1, still contains h9) — metrics must
	// re-optimise lazily and answer for the healed state.
	var m MetricsResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/heal/metrics", nil, &m); status != http.StatusOK {
		t.Fatalf("metrics after pending delta: status %d", status)
	}
	if m.Version != 2 || m.Hosts != 9 {
		t.Fatalf("heal did not publish the re-optimised state: %+v", m)
	}
	var got AssignmentResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/heal/assignment", nil, &got); status != http.StatusOK {
		t.Fatal("assignment read failed")
	}
	if got.Version != 2 || got.Assignment.Len() != 9 {
		t.Fatalf("assignment not healed: version %d len %d", got.Version, got.Assignment.Len())
	}
	// A second metrics poll on the unchanged session is served from the
	// memoised result (same version/entry/target).
	var again MetricsResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/heal/metrics", nil, &again); status != http.StatusOK || again != m {
		t.Fatalf("memoised metrics differ: %+v vs %+v", again, m)
	}
}

func TestDraining(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "stay", Spec: testSpec(3)}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	srv.Drain()
	if status, code := errCode(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{Spec: testSpec(3)}); status != http.StatusServiceUnavailable || code != "draining" {
		t.Fatalf("create while draining: status %d code %s", status, code)
	}
	if status, _ := errCode(t, http.MethodPost, ts.URL+"/v1/networks/stay/deltas", netmodel.Delta{}); status != http.StatusServiceUnavailable {
		t.Fatalf("delta while draining: status %d", status)
	}
	// Reads keep working during the drain.
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/stay/assignment", nil, nil); status != http.StatusOK {
		t.Fatalf("read while draining: status %d", status)
	}
	var health HealthResponse
	if status := do(t, http.MethodGet, ts.URL+"/healthz", nil, &health); status != http.StatusOK || !health.Draining {
		t.Fatalf("healthz while draining: status %d %+v", status, health)
	}
}

// TestConcurrentSessionHammer drives one session with concurrent delta
// writers, assignment readers, metrics readers and an assessment, so the
// race detector can see writer/reader interleavings on the hot paths.
func TestConcurrentSessionHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{SolveWorkers: 4, RequestTimeout: time.Minute})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "hammer", Spec: testSpec(12), Seed: 3}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}

	const (
		writers         = 3
		deltasPerWriter = 4
		readers         = 4
		readsPerReader  = 40
	)
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < deltasPerWriter; i++ {
				hid := netmodel.HostID(fmt.Sprintf("w%d-h%d", w, i))
				delta := netmodel.Delta{Ops: []netmodel.DeltaOp{
					{Op: netmodel.OpAddHost, Host: &netmodel.HostSpec{
						ID:       hid,
						Services: []netmodel.ServiceID{"os"},
						Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"win7", "ubt1404", "osx109"}},
					}},
					{Op: netmodel.OpAddEdge, A: "h0", B: hid},
				}}
				data, err := json.Marshal(delta)
				if err != nil {
					errc <- err
					return
				}
				resp, err := http.Post(ts.URL+"/v1/networks/hammer/deltas", "application/json", bytes.NewReader(data))
				if err != nil {
					errc <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("writer %d delta %d: status %d: %s", w, i, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	for rr := 0; rr < readers; rr++ {
		wg.Add(1)
		go func(rr int) {
			defer wg.Done()
			path := "/v1/networks/hammer/assignment"
			if rr%2 == 1 {
				path = "/v1/networks/hammer/metrics"
			}
			for i := 0; i < readsPerReader; i++ {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("reader %d: status %d", rr, resp.StatusCode)
					return
				}
			}
		}(rr)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		data, _ := json.Marshal(AssessRequest{Runs: 50, MaxTicks: 50, Mode: "event"})
		resp, err := http.Post(ts.URL+"/v1/networks/hammer/assess", "application/json", bytes.NewReader(data))
		if err != nil {
			errc <- err
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errc <- fmt.Errorf("assess: status %d", resp.StatusCode)
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the dust settles the session serves a consistent final state.
	var got AssignmentResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/hammer/assignment", nil, &got); status != http.StatusOK {
		t.Fatal("final read failed")
	}
	wantHosts := 12 + writers*deltasPerWriter
	if got.Assignment.Len() != wantHosts {
		t.Fatalf("final assignment has %d entries, want %d", got.Assignment.Len(), wantHosts)
	}
	if got.Version != uint64(1+writers*deltasPerWriter) {
		t.Fatalf("final version %d, want %d", got.Version, 1+writers*deltasPerWriter)
	}
}

func TestAssignmentHashStable(t *testing.T) {
	a := netmodel.NewAssignment()
	a.Set("b", "os", "win7")
	a.Set("a", "os", "ubt1404")
	b := netmodel.NewAssignment()
	b.Set("a", "os", "ubt1404")
	b.Set("b", "os", "win7")
	if AssignmentHash(a) != AssignmentHash(b) {
		t.Fatal("hash depends on insertion order")
	}
	b.Set("b", "os", "osx109")
	if AssignmentHash(a) == AssignmentHash(b) {
		t.Fatal("hash ignores product change")
	}
	if AssignmentHash(nil) != "" {
		t.Fatal("nil assignment should hash to empty string")
	}
}

package serve

import "context"

// pool is the bounded global solve pool: a counting semaphore shared by every
// session's heavy work (cold solves, incremental re-optimisations,
// Monte-Carlo assessment batches).  The wait is context-aware so a request
// whose deadline expires while queued fails with the context error instead
// of occupying the queue.
type pool struct {
	sem chan struct{}
}

func newPool(workers int) *pool {
	return &pool{sem: make(chan struct{}, workers)}
}

// acquire takes one pool token, waiting until one frees up or the context
// ends.
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a token taken by acquire.
func (p *pool) release() { <-p.sem }

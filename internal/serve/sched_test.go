package serve

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"
)

// simulateJob models one admitted solve: `units` work slices with a
// scheduler checkpoint between them, exactly the shape the solve driver
// gives real solves via core.Options.Checkpoint.
func simulateJob(t *testing.T, s *scheduler, cost float64, units int, unit time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	g, err := s.acquire(context.Background(), cost)
	if err != nil {
		t.Errorf("acquire(cost=%v): %v", cost, err)
		return 0
	}
	defer g.release()
	for u := 0; u < units; u++ {
		time.Sleep(unit)
		if err := g.checkpoint(context.Background()); err != nil {
			t.Errorf("checkpoint: %v", err)
			return 0
		}
	}
	return time.Since(start)
}

// runSmallFleet submits `n` small-tenant jobs at a fixed arrival spacing and
// returns their completion latencies (acquire wait + work + yields).
func runSmallFleet(t *testing.T, s *scheduler, n int) []time.Duration {
	t.Helper()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := simulateJob(t, s, 1000, 10, time.Millisecond)
			mu.Lock()
			latencies = append(latencies, d)
			mu.Unlock()
		}()
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	return latencies
}

func p99(latencies []time.Duration) time.Duration {
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	idx := len(latencies) * 99 / 100
	if idx >= len(latencies) {
		idx = len(latencies) - 1
	}
	return latencies[idx]
}

// TestSchedulerFairnessUnderMixedLoad is the acceptance check for the
// priority/aging scheduler: with one slot, a 100k-host-cost solve in flight
// and 50 small (1k-cost) tenants arriving must see a p99 completion latency
// within 2x of the same 50-tenant workload run without the big solve.  The
// pre-scheduler semaphore pool fails this by construction — FIFO admission
// parks every small tenant behind the entire big solve.
func TestSchedulerFairnessUnderMixedLoad(t *testing.T) {
	const smallTenants = 50

	solo := p99(runSmallFleet(t, newScheduler(1), smallTenants))

	s := newScheduler(1)
	bigDone := make(chan struct{})
	go func() {
		defer close(bigDone)
		// 100k-cost solve: 400 one-millisecond schedulable units.
		simulateJob(t, s, 100000, 400, time.Millisecond)
	}()
	// Let the big solve win the idle slot before the fleet arrives.
	time.Sleep(10 * time.Millisecond)
	mixed := p99(runSmallFleet(t, s, smallTenants))
	<-bigDone

	t.Logf("small-tenant p99: solo=%v mixed=%v ratio=%.2f", solo, mixed, float64(mixed)/float64(solo))
	if mixed > 2*solo {
		t.Errorf("mixed-load p99 %v exceeds 2x solo p99 %v", mixed, solo)
	}
}

// TestSchedulerPrefersCheapJobs pins the admission order: with the single
// slot held, a cheap job queued after an expensive one must still win the
// next dispatch.
func TestSchedulerPrefersCheapJobs(t *testing.T) {
	s := newScheduler(1)
	hold, err := s.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 2)
	var wg sync.WaitGroup
	launch := func(name string, cost float64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := s.acquire(context.Background(), cost)
			if err != nil {
				t.Errorf("acquire %s: %v", name, err)
				return
			}
			order <- name
			g.release()
		}()
	}
	launch("big", 100000)
	time.Sleep(20 * time.Millisecond) // big queues first and starts aging
	launch("small", 1000)
	time.Sleep(20 * time.Millisecond) // both queued before the slot frees
	hold.release()
	wg.Wait()
	if first := <-order; first != "small" {
		t.Errorf("dispatch order: %s won the slot first, want small", first)
	}
}

// TestSchedulerAgingPreventsStarvation verifies the other half of the
// fairness contract: under a continuous stream of cheap arrivals, the
// expensive job's aging discount eventually outranks fresh cheap jobs.
func TestSchedulerAgingPreventsStarvation(t *testing.T) {
	s := newScheduler(1)
	bigDone := make(chan struct{})
	go func() {
		defer close(bigDone)
		simulateJob(t, s, 50000, 1, time.Millisecond)
	}()
	time.Sleep(5 * time.Millisecond) // big job holds the slot
	// Cheap jobs keep arriving for far longer than the big job needs.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-bigDone:
			return
		case <-deadline:
			t.Fatal("expensive job starved by a stream of cheap arrivals")
		default:
			simulateJob(t, s, 10, 1, 100*time.Microsecond)
		}
	}
}

// TestSchedulerCheckpointYields pins the preemption mechanics: a running
// expensive job must hand its slot to a queued cheap job at the next
// checkpoint, then resume and finish.
func TestSchedulerCheckpointYields(t *testing.T) {
	s := newScheduler(1)
	big, err := s.acquire(context.Background(), 100000)
	if err != nil {
		t.Fatal(err)
	}

	smallRan := make(chan struct{})
	go func() {
		g, err := s.acquire(context.Background(), 100)
		if err != nil {
			t.Errorf("small acquire: %v", err)
			return
		}
		close(smallRan)
		g.release()
	}()

	// Wait until the small job is queued, then checkpoint: the big job must
	// yield, the small job runs, and checkpoint returns after the re-grant.
	for {
		s.mu.Lock()
		queued := len(s.pending) > 0
		s.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := big.checkpoint(context.Background()); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	select {
	case <-smallRan:
	case <-time.After(2 * time.Second):
		t.Fatal("queued cheap job never ran across the big job's checkpoint")
	}
	big.release()
}

// TestSchedulerAcquireHonoursContext verifies queued jobs respect deadlines.
func TestSchedulerAcquireHonoursContext(t *testing.T) {
	s := newScheduler(1)
	hold, err := s.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.acquire(ctx, 1); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire returned %v, want context.DeadlineExceeded", err)
	}
	s.mu.Lock()
	if n := len(s.pending); n != 0 {
		t.Errorf("cancelled job left %d entries in the queue", n)
	}
	s.mu.Unlock()
	hold.release()
	// The slot must still be usable after the cancelled wait.
	g, err := s.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	g.release()
}

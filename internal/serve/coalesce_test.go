package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netdiversity/internal/netmodel"
)

// addHostDelta builds a delta joining one chain host wired to an anchor.
func addHostDelta(id netmodel.HostID, anchor netmodel.HostID) netmodel.Delta {
	return netmodel.Delta{Ops: []netmodel.DeltaOp{
		{Op: netmodel.OpAddHost, Host: &netmodel.HostSpec{
			ID:       id,
			Services: []netmodel.ServiceID{"os"},
			Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"win7", "ubt1404", "osx109"}},
		}},
		{Op: netmodel.OpAddEdge, A: anchor, B: id},
	}}
}

// forceBatch enqueues the deltas on the session's queue and lands them as one
// leader turn — the deterministic white-box way to exercise coalescing (over
// HTTP the batch composition depends on goroutine scheduling).
func forceBatch(t *testing.T, srv *Server, sess *session, deltas []netmodel.Delta) []deltaOutcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reqs := make([]*deltaReq, len(deltas))
	for i, d := range deltas {
		reqs[i] = newDeltaReq(d)
		sess.deltas.enqueue(reqs[i])
	}
	if err := sess.lock(ctx); err != nil {
		t.Fatalf("lock: %v", err)
	}
	srv.runDeltaBatch(ctx, sess)
	outs := make([]deltaOutcome, len(reqs))
	for i, rq := range reqs {
		select {
		case outs[i] = <-rq.done:
		default:
			t.Fatalf("request %d was never acked", i)
		}
	}
	return outs
}

// TestCoalescedEqualsSerial pins the coalescing equivalence contract: N
// deltas landed as one batch reach the same final version AND the same
// assignment hash as the same N deltas applied serially.
func TestCoalescedEqualsSerial(t *testing.T) {
	const n = 5
	deltas := make([]netmodel.Delta, n)
	for i := range deltas {
		deltas[i] = addHostDelta(netmodel.HostID(fmt.Sprintf("x%d", i)), netmodel.HostID(fmt.Sprintf("h%d", i)))
	}

	// Serial reference run.
	_, tsA := newTestServer(t, Config{})
	if status := do(t, http.MethodPost, tsA.URL+"/v1/networks", CreateRequest{ID: "eq", Spec: testSpec(12), Seed: 42}, nil); status != http.StatusCreated {
		t.Fatalf("serial create: status %d", status)
	}
	var serial DeltaResponse
	for i, d := range deltas {
		if status := do(t, http.MethodPost, tsA.URL+"/v1/networks/eq/deltas", d, &serial); status != http.StatusOK {
			t.Fatalf("serial delta %d: status %d", i, status)
		}
		if serial.Coalesced != 0 {
			t.Fatalf("serial delta %d reported coalesced %d", i, serial.Coalesced)
		}
	}
	if serial.Version != 1+n {
		t.Fatalf("serial final version %d, want %d", serial.Version, 1+n)
	}

	// Coalesced run on an identical session.
	srvB, tsB := newTestServer(t, Config{})
	if status := do(t, http.MethodPost, tsB.URL+"/v1/networks", CreateRequest{ID: "eq", Spec: testSpec(12), Seed: 42}, nil); status != http.StatusCreated {
		t.Fatalf("coalesced create: status %d", status)
	}
	sess, ok := srvB.store.get("eq")
	if !ok {
		t.Fatal("session missing")
	}
	for i, out := range forceBatch(t, srvB, sess, deltas) {
		if out.err != nil {
			t.Fatalf("batched delta %d: %v", i, out.err)
		}
		if out.resp.Version != 1+n {
			t.Fatalf("batched delta %d acked version %d, want %d", i, out.resp.Version, 1+n)
		}
		if out.resp.Coalesced != n {
			t.Fatalf("batched delta %d acked coalesced %d, want %d", i, out.resp.Coalesced, n)
		}
		if out.resp.AssignmentHash != serial.AssignmentHash {
			t.Fatalf("batched hash %s != serial hash %s", out.resp.AssignmentHash, serial.AssignmentHash)
		}
	}
	var got AssignmentResponse
	if status := do(t, http.MethodGet, tsB.URL+"/v1/networks/eq/assignment", nil, &got); status != http.StatusOK {
		t.Fatalf("assignment: status %d", status)
	}
	if got.Version != serial.Version || got.AssignmentHash != serial.AssignmentHash {
		t.Fatalf("published state (v%d %s) != serial (v%d %s)",
			got.Version, got.AssignmentHash, serial.Version, serial.AssignmentHash)
	}
}

// TestCoalescedBatchRejectsOnlyInvalid pins the per-delta all-or-nothing
// contract inside a batch: one invalid delta is rejected with its own error
// while the rest of the batch lands as if it never existed.
func TestCoalescedBatchRejectsOnlyInvalid(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "mix", Spec: testSpec(6), Seed: 3}, nil); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	sess, _ := srv.store.get("mix")
	outs := forceBatch(t, srv, sess, []netmodel.Delta{
		addHostDelta("ok1", "h0"),
		{Ops: []netmodel.DeltaOp{{Op: netmodel.OpRemoveHost, ID: "no-such-host"}}},
		addHostDelta("ok2", "h1"),
	})
	if outs[0].err != nil || outs[2].err != nil {
		t.Fatalf("valid deltas rejected: %v / %v", outs[0].err, outs[2].err)
	}
	if outs[1].err == nil || !strings.Contains(outs[1].err.Error(), "no-such-host") {
		t.Fatalf("invalid delta error = %v", outs[1].err)
	}
	// The surviving batch is 2 deltas: version advances by exactly 2 and
	// both acks report the same post-batch state.
	for _, i := range []int{0, 2} {
		if outs[i].resp.Version != 3 || outs[i].resp.Coalesced != 2 {
			t.Fatalf("delta %d ack: %+v", i, outs[i].resp)
		}
	}
	var got AssignmentResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/mix/assignment", nil, &got); status != http.StatusOK {
		t.Fatalf("assignment: status %d", status)
	}
	if got.Version != 3 || got.Assignment.Len() != 8 {
		t.Fatalf("post-batch state: version %d hosts %d", got.Version, got.Assignment.Len())
	}
}

// TestEncodedCacheInvalidation pins the read-cache contract: cached bytes are
// byte-identical to the uncached encoding, a version bump is never served
// stale, and deleting the session returns its bytes to the budget.
func TestEncodedCacheInvalidation(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "inv", Spec: testSpec(6), Seed: 1}, nil); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	fetch := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s: content-type %q", path, ct)
		}
		body := make([]byte, 0, 4096)
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		return body
	}

	// First read misses and populates; the second is served from the cache
	// and must be byte-identical.
	for _, path := range []string{"/v1/networks/inv", "/v1/networks/inv/assignment", "/v1/networks/inv/metrics"} {
		if miss, hit := fetch(path), fetch(path); string(miss) != string(hit) {
			t.Fatalf("%s: cached body differs from encoded body:\n%s\n%s", path, miss, hit)
		}
	}
	if srv.CachedBytes() <= 0 {
		t.Fatalf("cached bytes %d after populated reads", srv.CachedBytes())
	}

	// A write invalidates: the next read reports the bumped version.
	var dres DeltaResponse
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks/inv/deltas", addHostDelta("nx", "h0"), &dres); status != http.StatusOK {
		t.Fatalf("delta: status %d", status)
	}
	var sum NetworkSummary
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/inv", nil, &sum); status != http.StatusOK || sum.Version != 2 {
		t.Fatalf("summary after delta: status %d version %d", status, sum.Version)
	}
	var got AssignmentResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/inv/assignment", nil, &got); status != http.StatusOK ||
		got.Version != 2 || got.AssignmentHash != dres.AssignmentHash {
		t.Fatalf("assignment after delta: status %d %+v", status, got)
	}
	var m MetricsResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/inv/metrics", nil, &m); status != http.StatusOK || m.Version != 2 {
		t.Fatalf("metrics after delta: status %d version %d", status, m.Version)
	}
	// Distinct entry/target pairs are distinct cache keys.
	var m2 MetricsResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/inv/metrics?entry=h1&target=h4", nil, &m2); status != http.StatusOK ||
		m2.Entry != "h1" || m2.Target != "h4" {
		t.Fatalf("keyed metrics: status %d %+v", status, m2)
	}

	if status := do(t, http.MethodDelete, ts.URL+"/v1/networks/inv", nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete: status %d", status)
	}
	if n := srv.CachedBytes(); n != 0 {
		t.Fatalf("cached bytes %d after delete, want 0", n)
	}
}

// TestAssessCampaignCache pins the compiled-campaign cache: re-assessing the
// same version with the same shape returns identical statistics (campaign
// reuse is exactly as deterministic as recompiling), and a version bump or a
// shape change recompiles.
func TestAssessCampaignCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "asc", Spec: testSpec(8), Seed: 5}, nil); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	assess := func(req AssessRequest) AssessResponse {
		t.Helper()
		var resp AssessResponse
		if status := do(t, http.MethodPost, ts.URL+"/v1/networks/asc/assess", req, &resp); status != http.StatusOK {
			t.Fatalf("assess: status %d", status)
		}
		resp.WallMS = 0
		return resp
	}
	seed := int64(9)
	req := AssessRequest{Runs: 200, Seed: &seed}
	first := assess(req)
	sess, _ := srv.store.get("asc")
	cached := sess.assessCache
	if cached == nil || cached.version != 1 {
		t.Fatalf("campaign not cached: %+v", cached)
	}
	if second := assess(req); second != first {
		t.Fatalf("cached assess diverged:\n%+v\n%+v", first, second)
	}
	if sess.assessCache.campaign != cached.campaign {
		t.Fatal("identical re-assess recompiled the campaign")
	}
	// A different shape recompiles.
	assess(AssessRequest{Runs: 100, Seed: &seed})
	if sess.assessCache.campaign == cached.campaign {
		t.Fatal("shape change did not recompile")
	}
	// A version bump invalidates.
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks/asc/deltas", addHostDelta("ax", "h0"), nil); status != http.StatusOK {
		t.Fatalf("delta: status %d", status)
	}
	if after := assess(req); after.Version != 2 {
		t.Fatalf("post-delta assess version %d", after.Version)
	}
	if sess.assessCache.version != 2 {
		t.Fatalf("cache version %d after delta", sess.assessCache.version)
	}
}

// TestCoalesceCacheHammer mixes coalescing writers with cached readers under
// the race detector: every write must succeed, and each reader goroutine must
// observe a non-decreasing version (a cached body is only ever served for the
// snapshot the request loaded).
func TestCoalesceCacheHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A network big enough that warm re-solves take visible time, so writers
	// genuinely queue behind the slot and batches form.
	if status := do(t, http.MethodPost, ts.URL+"/v1/networks", CreateRequest{ID: "ham", Spec: testSpec(150), Seed: 3}, nil); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	const (
		writers = 8
		rounds  = 8
		readers = 4
	)
	var (
		wwg, rwg  sync.WaitGroup
		stop      atomic.Bool
		coalesced atomic.Int64
		failures  atomic.Int64
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < rounds; i++ {
				id := netmodel.HostID(fmt.Sprintf("w%d-%d", w, i))
				var dres DeltaResponse
				if status := do(t, http.MethodPost, ts.URL+"/v1/networks/ham/deltas", addHostDelta(id, "h0"), &dres); status != http.StatusOK {
					fail("writer %d add %s: status %d", w, id, status)
					return
				}
				coalesced.Add(int64(dres.Coalesced))
				if status := do(t, http.MethodPost, ts.URL+"/v1/networks/ham/deltas", netmodel.Delta{Ops: []netmodel.DeltaOp{
					{Op: netmodel.OpRemoveHost, ID: id},
				}}, &dres); status != http.StatusOK {
					fail("writer %d remove %s: status %d", w, id, status)
					return
				}
			}
		}(w)
	}
	for rdr := 0; rdr < readers; rdr++ {
		rwg.Add(1)
		go func(rdr int) {
			defer rwg.Done()
			var last uint64
			for !stop.Load() {
				var got AssignmentResponse
				if status := do(t, http.MethodGet, ts.URL+"/v1/networks/ham/assignment", nil, &got); status != http.StatusOK {
					fail("reader %d assignment: status %d", rdr, status)
					return
				}
				if got.Version < last {
					fail("reader %d saw version go backwards: %d then %d", rdr, last, got.Version)
					return
				}
				last = got.Version
				var sum NetworkSummary
				if status := do(t, http.MethodGet, ts.URL+"/v1/networks/ham", nil, &sum); status != http.StatusOK {
					fail("reader %d summary: status %d", rdr, status)
					return
				}
				if sum.Version < last {
					fail("reader %d summary version went backwards: %d then %d", rdr, last, sum.Version)
					return
				}
				last = sum.Version
			}
		}(rdr)
	}
	wwg.Wait()
	stop.Store(true)
	rwg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d hammer failures", failures.Load())
	}
	// The final version counts every accepted delta exactly once, whether it
	// landed alone or in a batch.
	var got AssignmentResponse
	if status := do(t, http.MethodGet, ts.URL+"/v1/networks/ham/assignment", nil, &got); status != http.StatusOK {
		t.Fatalf("final assignment: status %d", status)
	}
	wantVersion := uint64(1 + writers*rounds*2)
	if got.Version != wantVersion {
		t.Fatalf("final version %d, want %d (every write counted once)", got.Version, wantVersion)
	}
	t.Logf("hammer: final version %d, coalesced-batch memberships observed: %d", got.Version, coalesced.Load())
}

package serve

import (
	"context"
	"sync"
	"time"
)

// agingQuantum is the wait time that halves a queued job's effective cost:
// effective = cost / (1 + wait/agingQuantum).  It is the scheduler's single
// fairness knob — small enough that a million-host solve stops monopolising
// the plane within a human-noticeable beat, large enough that a burst of
// small jobs still drains ahead of it.
const agingQuantum = 100 * time.Millisecond

// scheduler is the shared solve scheduler: the successor of the bounded
// semaphore pool.  Heavy work (cold solves, re-optimisations, assessment
// batches, metric evaluations) acquires a grant with a cost estimate; free
// slots go to the queued job with the lowest *effective* cost — estimated
// cost discounted by time spent waiting — so small tenants schedule ahead of
// big ones without starving them (aging eventually promotes any job to the
// front).
//
// Large solves are split into schedulable units through the grant's
// checkpoint hook: wired into solve.Options.Checkpoint (via core.Options),
// it runs between solver driver steps, and when a queued job outranks the
// running one it yields the slot — re-enqueued at its own cost, the big
// solve resumes after the cheaper work drains.  A waiting small tenant
// therefore sees latency bounded by one driver step of the running solve,
// not by the whole solve.
type scheduler struct {
	mu      sync.Mutex
	free    int
	pending []*grant
}

// grant states.  queued grants sit in scheduler.pending, running grants hold
// one slot, done grants hold nothing (release is terminal and idempotent by
// state, so error paths may release a grant that checkpoint left queued).
const (
	grantQueued = iota
	grantRunning
	grantDone
)

// grant is one scheduled admission to the solve plane.
type grant struct {
	s     *scheduler
	cost  float64
	enq   time.Time
	state int
	ready chan struct{} // 1-buffered; one token per queued->running transition
}

func newScheduler(workers int) *scheduler {
	if workers < 1 {
		workers = 1
	}
	return &scheduler{free: workers}
}

// effectiveCost is the queue priority: estimated cost discounted by wait.
func (g *grant) effectiveCost(now time.Time) float64 {
	wait := now.Sub(g.enq)
	if wait < 0 {
		wait = 0
	}
	return g.cost / (1 + float64(wait)/float64(agingQuantum))
}

// acquire queues a job with the given cost estimate and waits for a slot or
// the context.  cost is relative, not calibrated: callers use any monotone
// proxy for solve work (the serving plane uses the tenant's host count).
func (s *scheduler) acquire(ctx context.Context, cost float64) (*grant, error) {
	if cost < 1 {
		cost = 1
	}
	g := &grant{s: s, cost: cost, enq: time.Now(), state: grantQueued, ready: make(chan struct{}, 1)}
	s.mu.Lock()
	s.pending = append(s.pending, g)
	s.dispatchLocked()
	s.mu.Unlock()
	select {
	case <-g.ready:
		return g, nil
	case <-ctx.Done():
		g.release() // undo: drops the queued entry, or frees a just-won slot
		return nil, ctx.Err()
	}
}

// release returns the grant's slot (or queue entry) to the scheduler.  Safe
// to call exactly once from any state; the handlers call it via defer so
// every exit path — including a checkpoint abort that left the grant queued
// mid-yield — cleans up the same way.
func (g *grant) release() {
	s := g.s
	s.mu.Lock()
	switch g.state {
	case grantRunning:
		s.free++
	case grantQueued:
		s.removeLocked(g)
	}
	g.state = grantDone
	s.dispatchLocked()
	s.mu.Unlock()
}

// checkpoint is the preemption point, shaped for solve.Options.Checkpoint.
// Called between solver steps, it yields the slot whenever a queued job
// outranks the running one, and blocks until the scheduler re-grants.  The
// returned error is the context's, so an expired deadline aborts the solve
// exactly like the pre-scheduler pool did.
func (g *grant) checkpoint(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s := g.s
	s.mu.Lock()
	if g.state != grantRunning || !s.outrankedLocked(g) {
		s.mu.Unlock()
		return nil
	}
	// Yield: back to the queue at full cost with a fresh enqueue time, so
	// the cheaper waiters win the slot and this job re-ages from now.
	g.state = grantQueued
	g.enq = time.Now()
	s.pending = append(s.pending, g)
	s.free++
	s.dispatchLocked()
	s.mu.Unlock()
	select {
	case <-g.ready:
		return nil
	case <-ctx.Done():
		// The caller's deferred release drops the queued entry (or the slot,
		// if a re-grant raced the cancellation).
		return ctx.Err()
	}
}

// outrankedLocked reports whether any queued job beats the running grant's
// raw cost.  The running job gets no aging credit: it holds the slot, its
// wait is over.
func (s *scheduler) outrankedLocked(g *grant) bool {
	now := time.Now()
	for _, p := range s.pending {
		if p.effectiveCost(now) < g.cost {
			return true
		}
	}
	return false
}

// dispatchLocked hands free slots to the queued jobs with the lowest
// effective cost.  The scan is linear; the pending queue is bounded by the
// server's in-flight request count, far below where a heap would matter.
func (s *scheduler) dispatchLocked() {
	now := time.Now()
	for s.free > 0 && len(s.pending) > 0 {
		best := 0
		for i := 1; i < len(s.pending); i++ {
			if s.pending[i].effectiveCost(now) < s.pending[best].effectiveCost(now) {
				best = i
			}
		}
		g := s.pending[best]
		s.pending = append(s.pending[:best], s.pending[best+1:]...)
		g.state = grantRunning
		s.free--
		g.ready <- struct{}{}
	}
}

func (s *scheduler) removeLocked(g *grant) {
	for i, p := range s.pending {
		if p == g {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

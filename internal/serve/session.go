package serve

import (
	"context"
	"sync/atomic"

	"netdiversity/internal/core"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
	"netdiversity/internal/wal"
)

// session is one tenant network: a live optimiser plus the serving-side
// bookkeeping.  All optimiser/network access runs under the writer slot
// (acquired with lock); readers are served from the published snapshot and
// never take the slot.
type session struct {
	id     string
	solver string
	seed   int64

	// writer is the session's single-writer slot: a one-token semaphore
	// instead of a sync.Mutex so queued writers can honour request
	// deadlines.
	writer chan struct{}

	// wlog is the session's write-ahead log handle when the server runs
	// with persistence (nil otherwise).  Guarded by the writer slot: every
	// append and compaction happens on the publish path, which the slot
	// already serialises.
	wlog *wal.Log

	// simSpec is the similarity spec the session was created with (nil for
	// the paper default), kept so compacted snapshots can serialize it.
	simSpec *SimilaritySpec

	// maxIter is the session's solver iteration budget, journaled in
	// snapshots so a recovered session solves with the same knobs.
	maxIter int

	// pendingJournal holds deltas that mutated the network but are not yet
	// covered by a journaled record — a batch whose re-optimisation timed
	// out mid-solve.  The next successful publish folds them into its
	// record so replay reconstructs the full network history.  Guarded by
	// the writer slot.
	pendingJournal []netmodel.Delta

	// opt, net and sim are guarded by the writer slot.  opt is nil for a
	// replica session on a follower: such sessions are advanced exclusively
	// by deterministic patch replay (Server.ReplicaApply) and gain an
	// optimiser only at promotion.
	opt *core.Optimizer
	net *netmodel.Network
	sim *vulnsim.SimilarityTable

	// cs is the session's constraint set (nil or empty when unconstrained),
	// kept on the session so snapshot serialization works without an
	// optimiser — replica sessions have none.  Guarded by the writer slot.
	cs *netmodel.ConstraintSet

	// replicated marks a session on a server with a Replicator configured:
	// un-journaled delta batches are remembered even in memory-only mode so
	// replication records always carry the full network history.
	replicated bool

	// closed marks a session that was removed from the store (failed create
	// rollback, DELETE).  Guarded by the writer slot: a writer that acquires
	// the slot after removal observes it and treats the session as gone
	// instead of acknowledging work on an orphan.
	closed bool

	// pendingReopt marks a delta that was applied to the network but whose
	// re-optimisation failed (deadline, cancellation): the optimiser keeps
	// serving the previous assignment, and the next slot holder that needs
	// network/assignment consistency (delta, metrics, assess) re-optimises
	// lazily before proceeding.  Guarded by the writer slot.
	pendingReopt bool

	// metricsCache memoises the last metrics computation; valid only for the
	// same snapshot version and entry/target pair.  Guarded by the writer
	// slot.
	metricsCache *MetricsResponse

	// deltas is the pending coalesced-delta queue: requests enqueue here
	// before competing for the writer slot, and the slot holder drains the
	// whole queue into one batch apply + re-solve (see coalesce.go).
	// batchScratch is the leader's reusable apply-slice backing array,
	// guarded by the writer slot like every other leader-only state.
	deltas       deltaQueue
	batchScratch []netmodel.Delta

	// assessCache memoises the last compiled attack campaign; valid only
	// for the same snapshot version and campaign shape.  Guarded by the
	// writer slot (compilation runs under it).
	assessCache *assessCacheEntry

	// encSummary/encAssignment/encMetrics are the version-keyed pre-encoded
	// response bodies of the session's read endpoints (see cache.go), read
	// and replaced lock-free; cachedBytes is the session's charge against
	// the server-wide cache budget.
	encSummary    atomic.Pointer[encEntry]
	encAssignment atomic.Pointer[encEntry]
	encMetrics    atomic.Pointer[encEntry]
	cachedBytes   atomic.Int64

	// snap is the immutable published state read lock-free by GET handlers.
	// Written only by the slot holder after a successful solve.
	snap atomic.Pointer[snapshot]

	// activeGrant is the scheduler admission of the session's in-flight
	// heavy work, read by the checkpoint the optimiser's solves call between
	// steps.  Stored/cleared by the writer-slot holder around each solve; an
	// atomic pointer (not writer-guarded state) because the optimiser may
	// invoke the checkpoint from solver worker goroutines.
	activeGrant atomic.Pointer[grant]
}

// checkpoint is the session's solve checkpoint, wired into core.Options at
// optimiser construction: it forwards to the scheduler grant active for the
// current solve, giving the scheduler a preemption point between solver
// steps.  Outside any grant (nothing admitted) it only propagates context
// cancellation.
func (s *session) checkpoint(ctx context.Context) error {
	if g := s.activeGrant.Load(); g != nil {
		return g.checkpoint(ctx)
	}
	return ctx.Err()
}

// beginGrant attaches the scheduler grant the next solve reports to.
func (s *session) beginGrant(g *grant) { s.activeGrant.Store(g) }

// endGrant detaches and releases the active grant.
func (s *session) endGrant(g *grant) {
	s.activeGrant.Store(nil)
	g.release()
}

// solveCost is the scheduler cost estimate for this session's heavy work:
// the host count, a monotone proxy for MRF size and hence solve time.
func (s *session) solveCost() float64 { return float64(s.net.NumHosts()) }

// snapshot is the immutable published state of a session.  The assignment is
// produced fresh by every solve and never mutated afterwards, so sharing the
// pointer with concurrent readers is safe.
type snapshot struct {
	version    uint64
	energy     float64
	assignment *netmodel.Assignment
	hash       string
	hosts      int
	links      int
}

// lock acquires the session's writer slot, honouring the context deadline.
func (s *session) lock(ctx context.Context) error {
	select {
	case s.writer <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// unlock releases the writer slot.
func (s *session) unlock() { <-s.writer }

// buildSnapshot computes the next published snapshot without installing it,
// advancing the version by n — the number of accepted deltas the snapshot
// folds in, so a coalesced batch reaches the same final version as the same
// deltas applied serially and the version stays a monotone write counter
// either way.  Must be called by the writer-slot holder after a successful
// solve.  The assignment comes from core.Optimizer.Snapshot — a deep copy
// owned by the snapshot alone, so lock-free readers can never observe
// optimiser-internal state no matter how core evolves.  Build and install
// are deliberately separate steps with no combined shortcut: the persistence
// plane journals the state in between (journalPublish), so lock-free readers
// only ever observe durably-acked state.
func (s *session) buildSnapshot(n uint64) snapshot {
	a, energy, ok := s.opt.Snapshot()
	if !ok {
		// Unreachable: publish follows a successful Optimize/Reoptimize.
		a, energy = netmodel.NewAssignment(), 0
	}
	prev := s.snap.Load()
	version := n
	if prev != nil {
		version = prev.version + n
	}
	return snapshot{
		version:    version,
		energy:     energy,
		assignment: a,
		hash:       AssignmentHash(a),
		hosts:      s.net.NumHosts(),
		links:      s.net.NumLinks(),
	}
}

// install publishes a built snapshot to lock-free readers.  Must be called
// by the writer-slot holder, after the snapshot's WAL record (if any) is
// durable.
func (s *session) install(snap snapshot) { s.snap.Store(&snap) }

// AssignmentHash returns a stable FNV-1a hash of an assignment — the
// fingerprint the API exposes so clients (and the CI smoke test) can assert
// deterministic results without diffing the whole assignment.  It delegates
// to netmodel.Assignment.Hash, the shared implementation the WAL recovery
// path verifies replayed state against.
func AssignmentHash(a *netmodel.Assignment) string { return a.Hash() }

package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Store errors surfaced as API error codes by the handlers.
var (
	// ErrSessionExists is returned when a create names an ID already live.
	ErrSessionExists = errors.New("serve: session already exists")
	// ErrTooManySessions is returned when the session cap is reached.
	ErrTooManySessions = errors.New("serve: session limit reached")
)

// store is the sharded session manager: the session ID hashes to a shard and
// each shard is an independently locked map, so lookups and inserts on
// different sessions never contend on one lock.  The shard mutex guards only
// the map — per-session state is guarded by the session's own writer slot.
type store struct {
	shards      []storeShard
	maxSessions int
	count       atomic.Int64
	nextID      atomic.Uint64
}

type storeShard struct {
	mu sync.RWMutex
	m  map[string]*session
}

func newStore(shards, maxSessions int) *store {
	st := &store{shards: make([]storeShard, shards), maxSessions: maxSessions}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*session)
	}
	return st
}

// shard returns the shard owning an ID.  FNV-1a is inlined over the string:
// the hash/fnv boxed writer costs two heap allocations per lookup, and this
// sits on the path of every request.
func (st *store) shard(id string) *storeShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &st.shards[h%uint32(len(st.shards))]
}

// allocID returns the next server-assigned session ID.  IDs are allocated in
// creation order, so a client replaying the same request sequence against a
// fresh server observes identical IDs (part of the determinism contract).
func (st *store) allocID() string {
	return fmt.Sprintf("net-%d", st.nextID.Add(1))
}

// get returns the live session with the given ID.
func (st *store) get(id string) (*session, bool) {
	sh := st.shard(id)
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	return s, ok
}

// put inserts a new session, enforcing ID uniqueness and the session cap.
// The cap slot is reserved atomically before the insert (and returned on any
// failure), so concurrent creates cannot overshoot MaxSessions.
func (st *store) put(s *session) error {
	if st.count.Add(1) > int64(st.maxSessions) && st.maxSessions > 0 {
		st.count.Add(-1)
		return ErrTooManySessions
	}
	sh := st.shard(s.id)
	sh.mu.Lock()
	if _, ok := sh.m[s.id]; ok {
		sh.mu.Unlock()
		st.count.Add(-1)
		return ErrSessionExists
	}
	sh.m[s.id] = s
	sh.mu.Unlock()
	return nil
}

// remove deletes a session, reporting whether it was live.
func (st *store) remove(id string) bool {
	sh := st.shard(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if ok {
		st.count.Add(-1)
	}
	return ok
}

// list returns every live session sorted by ID (stable listing order for the
// index endpoint).
func (st *store) list() []*session {
	var out []*session
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// len returns the live session count.
func (st *store) len() int { return int(st.count.Load()) }

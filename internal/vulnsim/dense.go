package vulnsim

// Dense is a flat, index-addressed view of a SimilarityTable over a fixed
// product list: sim[i*n+j] holds Sim(products[i], products[j]).  The sparse
// table behind Sim costs two map lookups per query, which dominates when a
// simulation campaign derives millions of per-edge success probabilities;
// the dense view precomputes every pair once at campaign-compile time so the
// hot loops index a contiguous buffer instead.
//
// A Dense is a snapshot: mutations of the source table after construction
// are not reflected.
type Dense struct {
	products []string
	index    map[string]int
	sim      []float64
}

// NewDense materialises the pairwise similarities of the given products.
// Products may include IDs the table does not know; those pairs take the
// table's default similarity, exactly as Sim would.  Duplicate products keep
// the first occurrence.
func NewDense(t *SimilarityTable, products []string) *Dense {
	d := &Dense{index: make(map[string]int, len(products))}
	for _, p := range products {
		if _, ok := d.index[p]; ok {
			continue
		}
		d.index[p] = len(d.products)
		d.products = append(d.products, p)
	}
	n := len(d.products)
	d.sim = make([]float64, n*n)
	for i, a := range d.products {
		row := d.sim[i*n : (i+1)*n]
		for j, b := range d.products {
			row[j] = t.Sim(a, b)
		}
	}
	return d
}

// NumProducts returns the number of distinct products covered.
func (d *Dense) NumProducts() int { return len(d.products) }

// Products returns the covered product IDs in index order.
func (d *Dense) Products() []string {
	out := make([]string, len(d.products))
	copy(out, d.products)
	return out
}

// Index returns the dense index of a product, or -1 when it is not covered.
func (d *Dense) Index(p string) int {
	if i, ok := d.index[p]; ok {
		return i
	}
	return -1
}

// Sim returns the similarity of the products at dense indices i and j.
func (d *Dense) Sim(i, j int) float64 {
	return d.sim[i*len(d.products)+j]
}

// Row returns the contiguous similarity row of the product at dense index i.
// Callers must treat it as read-only.
func (d *Dense) Row(i int) []float64 {
	n := len(d.products)
	return d.sim[i*n : (i+1)*n : (i+1)*n]
}

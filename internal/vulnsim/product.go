// Package vulnsim models software products, their vulnerability sets and the
// pairwise vulnerability-similarity metric of Section III of the paper.
//
// The central object is the SimilarityTable: for every pair of products that
// can provide the same service it stores the Jaccard similarity of their
// vulnerability sets, sim(x, y) = |Vx ∩ Vy| / |Vx ∪ Vy|.  The table can be
// built from a CVE corpus (see BuildSimilarityTable) or loaded from the
// numbers published in the paper (see PaperOSTable, PaperBrowserTable and
// PaperDatabaseTable).
package vulnsim

import (
	"errors"
	"fmt"
	"strings"
)

// ServiceKind identifies the class of service a product provides.  The case
// study in the paper uses three services per host: an operating system, a web
// browser and a database server.
type ServiceKind int

const (
	// ServiceOS is the operating-system service (s1 in Table IV).
	ServiceOS ServiceKind = iota + 1
	// ServiceWebBrowser is the web-browser service (s2 in Table IV).
	ServiceWebBrowser
	// ServiceDatabase is the database-server service (s3 in Table IV).
	ServiceDatabase
	// ServiceGeneric is used for synthetic workloads where the service has
	// no real-world identity (scalability experiments, Tables VII-IX).
	ServiceGeneric
)

// String returns a short human-readable name of the service kind.
func (k ServiceKind) String() string {
	switch k {
	case ServiceOS:
		return "os"
	case ServiceWebBrowser:
		return "web_browser"
	case ServiceDatabase:
		return "database"
	case ServiceGeneric:
		return "generic"
	default:
		return fmt.Sprintf("service(%d)", int(k))
	}
}

// Product identifies a single off-the-shelf product (a specific release of a
// specific package by a specific vendor).  The paper treats every release as
// a distinct product, identified by its CPE entry; we keep the same
// granularity.
type Product struct {
	// ID is the stable short identifier used throughout the library
	// (e.g. "win7", "ie10", "mssql14").
	ID string
	// Vendor is the product vendor, e.g. "microsoft".
	Vendor string
	// Name is the product name, e.g. "windows_7".
	Name string
	// Version is the release, e.g. "7", "10.5", "14".
	Version string
	// Kind is the service class the product can provide.
	Kind ServiceKind
}

// CPE returns a CPE 2.2-style URI for the product, mirroring the naming used
// by NVD entries (cpe:/o:vendor:name:version for operating systems,
// cpe:/a:... for applications).
func (p Product) CPE() string {
	part := "a"
	if p.Kind == ServiceOS {
		part = "o"
	}
	if p.Version == "" {
		return fmt.Sprintf("cpe:/%s:%s:%s", part, p.Vendor, p.Name)
	}
	return fmt.Sprintf("cpe:/%s:%s:%s:%s", part, p.Vendor, p.Name, p.Version)
}

// String implements fmt.Stringer.
func (p Product) String() string { return p.ID }

// ErrBadCPE is returned by ParseCPE when the URI cannot be parsed.
var ErrBadCPE = errors.New("vulnsim: malformed CPE URI")

// ParseCPE parses a CPE 2.2 URI of the form cpe:/<part>:<vendor>:<name>[:<version>]
// into a Product.  The product ID is derived from the vendor, name and
// version.  The part "o" maps to ServiceOS; everything else maps to
// ServiceGeneric because the CPE alone does not reveal whether the product is
// a browser, a database or something else.
func ParseCPE(uri string) (Product, error) {
	const prefix = "cpe:/"
	if !strings.HasPrefix(uri, prefix) {
		return Product{}, fmt.Errorf("%w: %q", ErrBadCPE, uri)
	}
	fields := strings.Split(strings.TrimPrefix(uri, prefix), ":")
	if len(fields) < 3 {
		return Product{}, fmt.Errorf("%w: %q needs part, vendor and product", ErrBadCPE, uri)
	}
	part := fields[0]
	vendor := fields[1]
	name := fields[2]
	version := ""
	if len(fields) > 3 {
		version = fields[3]
	}
	if vendor == "" || name == "" {
		return Product{}, fmt.Errorf("%w: %q has empty vendor or product", ErrBadCPE, uri)
	}
	kind := ServiceGeneric
	if part == "o" {
		kind = ServiceOS
	}
	id := name
	if version != "" && version != "-" {
		id = name + "_" + version
	}
	return Product{
		ID:      id,
		Vendor:  vendor,
		Name:    name,
		Version: version,
		Kind:    kind,
	}, nil
}

// Catalog is a set of products indexed by ID.  It is the universe P of
// Definition 2 in the paper.
type Catalog struct {
	products map[string]Product
	order    []string
}

// NewCatalog builds a catalog from the given products.  Adding two products
// with the same ID returns an error so that the similarity tables stay
// unambiguous.
func NewCatalog(products ...Product) (*Catalog, error) {
	c := &Catalog{products: make(map[string]Product, len(products))}
	for _, p := range products {
		if err := c.Add(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// MustCatalog is like NewCatalog but panics on duplicate IDs.  It is intended
// for package-level literals describing static catalogues (e.g. the paper's
// Table IV products) where a duplicate is a programming error.
func MustCatalog(products ...Product) *Catalog {
	c, err := NewCatalog(products...)
	if err != nil {
		panic(err)
	}
	return c
}

// Add inserts a product into the catalog.
func (c *Catalog) Add(p Product) error {
	if p.ID == "" {
		return errors.New("vulnsim: product ID must not be empty")
	}
	if _, ok := c.products[p.ID]; ok {
		return fmt.Errorf("vulnsim: duplicate product %q", p.ID)
	}
	c.products[p.ID] = p
	c.order = append(c.order, p.ID)
	return nil
}

// Get returns the product with the given ID.
func (c *Catalog) Get(id string) (Product, bool) {
	p, ok := c.products[id]
	return p, ok
}

// Len returns the number of products in the catalog.
func (c *Catalog) Len() int { return len(c.order) }

// IDs returns all product IDs in insertion order.  The returned slice is a
// copy and can be modified by the caller.
func (c *Catalog) IDs() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// ByKind returns the IDs of all products of the given service kind, in
// insertion order.
func (c *Catalog) ByKind(kind ServiceKind) []string {
	var out []string
	for _, id := range c.order {
		if c.products[id].Kind == kind {
			out = append(out, id)
		}
	}
	return out
}

// Products returns a copy of all products in insertion order.
func (c *Catalog) Products() []Product {
	out := make([]Product, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.products[id])
	}
	return out
}

package vulnsim

import (
	"strings"
	"testing"
)

func TestParseCVEID(t *testing.T) {
	tests := []struct {
		id       string
		wantYear int
		wantErr  bool
	}{
		{"CVE-2016-7153", 2016, false},
		{"CVE-1999-0001", 1999, false},
		{"CVE-2020-123456", 2020, false},
		{"cve-2016-7153", 0, true},
		{"CVE-16-7153", 0, true},
		{"CVE-2016-1", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		year, err := ParseCVEID(tt.id)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseCVEID(%q) expected error", tt.id)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCVEID(%q): %v", tt.id, err)
			continue
		}
		if year != tt.wantYear {
			t.Errorf("ParseCVEID(%q) year = %d, want %d", tt.id, year, tt.wantYear)
		}
	}
}

func TestNewCVEValidation(t *testing.T) {
	if _, err := NewCVE("CVE-2016-7153", 11, "a"); err == nil {
		t.Error("CVSS > 10 should be rejected")
	}
	if _, err := NewCVE("CVE-2016-7153", -1, "a"); err == nil {
		t.Error("negative CVSS should be rejected")
	}
	if _, err := NewCVE("bogus", 5, "a"); err == nil {
		t.Error("malformed ID should be rejected")
	}
	c, err := NewCVE("CVE-2016-7153", 7.2, "edge", "chrome")
	if err != nil {
		t.Fatalf("NewCVE: %v", err)
	}
	if c.Year != 2016 || len(c.Affected) != 2 {
		t.Errorf("NewCVE produced %+v", c)
	}
}

func mustCVE(t *testing.T, id string, cvss float64, affected ...string) CVE {
	t.Helper()
	c, err := NewCVE(id, cvss, affected...)
	if err != nil {
		t.Fatalf("NewCVE(%q): %v", id, err)
	}
	return c
}

func buildTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	cves := []CVE{
		mustCVE(t, "CVE-2010-0001", 9.0, "win7", "winxp"),
		mustCVE(t, "CVE-2012-0002", 7.0, "win7"),
		mustCVE(t, "CVE-2014-0003", 5.0, "win7", "win81", "win10"),
		mustCVE(t, "CVE-2016-0004", 6.5, "chrome50"),
		mustCVE(t, "CVE-2016-0005", 4.0, "chrome50", "firefox"),
		mustCVE(t, "CVE-2018-0006", 8.0, "win7", "winxp"),
	}
	if err := db.AddAll(cves); err != nil {
		t.Fatalf("AddAll: %v", err)
	}
	return db
}

func TestDatabaseBasics(t *testing.T) {
	db := buildTestDB(t)
	if db.Len() != 6 {
		t.Fatalf("Len = %d, want 6", db.Len())
	}
	if _, ok := db.Get("CVE-2010-0001"); !ok {
		t.Error("Get should find an inserted CVE")
	}
	if _, ok := db.Get("CVE-1999-9999"); ok {
		t.Error("Get should not find a missing CVE")
	}
	if err := db.Add(mustCVE(t, "CVE-2010-0001", 5, "x")); err == nil {
		t.Error("duplicate CVE should be rejected")
	}
	products := db.Products()
	if len(products) != 6 {
		t.Errorf("Products = %v, want 6 distinct products", products)
	}
}

func TestVulnSetAndFilter(t *testing.T) {
	db := buildTestDB(t)
	all := db.VulnSet("win7", VulnFilter{})
	if len(all) != 4 {
		t.Fatalf("win7 has %d vulns, want 4", len(all))
	}
	windowed := db.VulnSet("win7", VulnFilter{FromYear: 2011, ToYear: 2016})
	if len(windowed) != 2 {
		t.Fatalf("win7 2011-2016 has %d vulns, want 2", len(windowed))
	}
	severe := db.VulnCount("win7", VulnFilter{MinCVSS: 8})
	if severe != 2 {
		t.Fatalf("win7 with CVSS>=8 has %d vulns, want 2", severe)
	}
	if n := db.VulnCount("unknown", VulnFilter{}); n != 0 {
		t.Fatalf("unknown product should have 0 vulns, got %d", n)
	}
}

func TestSharedVulns(t *testing.T) {
	db := buildTestDB(t)
	shared := db.SharedVulns("win7", "winxp", VulnFilter{})
	if len(shared) != 2 {
		t.Fatalf("win7/winxp share %d vulns, want 2", len(shared))
	}
	if shared[0] != "CVE-2010-0001" || shared[1] != "CVE-2018-0006" {
		t.Errorf("shared vulns not sorted or wrong: %v", shared)
	}
	if got := db.SharedVulns("win7", "chrome50", VulnFilter{}); len(got) != 0 {
		t.Errorf("win7/chrome50 should share nothing, got %v", got)
	}
	windowed := db.SharedVulns("win7", "winxp", VulnFilter{ToYear: 2016})
	if len(windowed) != 1 {
		t.Errorf("win7/winxp up to 2016 should share 1, got %v", windowed)
	}
}

func TestSummary(t *testing.T) {
	db := buildTestDB(t)
	catalog := PaperCatalog()
	s, err := db.Summary("CVE-2014-0003", catalog)
	if err != nil {
		t.Fatalf("Summary: %v", err)
	}
	if !strings.Contains(s, "cpe:/o:microsoft:windows_7") {
		t.Errorf("summary should contain the CPE of windows 7: %s", s)
	}
	if _, err := db.Summary("CVE-0000-0000", catalog); err == nil {
		t.Error("Summary of unknown CVE should fail")
	}
	// Without a catalog the raw product IDs are used.
	s, err = db.Summary("CVE-2014-0003", nil)
	if err != nil {
		t.Fatalf("Summary(nil catalog): %v", err)
	}
	if !strings.Contains(s, "win81") {
		t.Errorf("summary without catalog should list raw IDs: %s", s)
	}
}

package vulnsim

import (
	"strings"
	"testing"
)

// sampleFeed is a minimal NVD JSON 1.1 feed with three CVE items: one
// affecting two Windows releases (CPE 2.3), one affecting a browser
// (CPE 2.2 fallback), and one with no vulnerable configuration.
const sampleFeed = `{
  "CVE_Items": [
    {
      "cve": {"CVE_data_meta": {"ID": "CVE-2016-7153"}},
      "configurations": {"nodes": [
        {"operator": "OR", "cpe_match": [
          {"vulnerable": true, "cpe23Uri": "cpe:2.3:o:microsoft:windows_7:-:*:*:*:*:*:*:*"},
          {"vulnerable": true, "cpe23Uri": "cpe:2.3:o:microsoft:windows_10:-:*:*:*:*:*:*:*"},
          {"vulnerable": false, "cpe23Uri": "cpe:2.3:o:microsoft:windows_8.1:-:*:*:*:*:*:*:*"}
        ]}
      ]},
      "impact": {"baseMetricV3": {"cvssV3": {"baseScore": 8.1}}}
    },
    {
      "cve": {"CVE_data_meta": {"ID": "CVE-2015-1234"}},
      "configurations": {"nodes": [
        {"operator": "AND", "children": [
          {"operator": "OR", "cpe_match": [
            {"vulnerable": true, "cpe22Uri": "cpe:/a:google:chrome:50"}
          ]}
        ]}
      ]},
      "impact": {"baseMetricV2": {"cvssV2": {"baseScore": 4.3}}}
    },
    {
      "cve": {"CVE_data_meta": {"ID": "CVE-2014-9999"}},
      "configurations": {"nodes": []},
      "impact": {}
    }
  ]
}`

func TestLoadNVDJSONDefaultMapper(t *testing.T) {
	db := NewDatabase()
	added, err := LoadNVDJSON(db, strings.NewReader(sampleFeed), nil)
	if err != nil {
		t.Fatalf("LoadNVDJSON: %v", err)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2 (the item without configurations is skipped)", added)
	}
	c, ok := db.Get("CVE-2016-7153")
	if !ok {
		t.Fatal("CVE-2016-7153 missing")
	}
	if len(c.Affected) != 2 {
		t.Errorf("affected = %v, want the two vulnerable Windows releases", c.Affected)
	}
	if c.CVSS != 8.1 {
		t.Errorf("CVSS = %v, want 8.1 (v3 preferred)", c.CVSS)
	}
	browser, ok := db.Get("CVE-2015-1234")
	if !ok {
		t.Fatal("CVE-2015-1234 missing")
	}
	if browser.CVSS != 4.3 {
		t.Errorf("CVSS = %v, want the v2 fallback 4.3", browser.CVSS)
	}
	if len(browser.Affected) != 1 || browser.Affected[0] != "chrome_50" {
		t.Errorf("affected = %v, want [chrome_50]", browser.Affected)
	}
}

func TestLoadNVDJSONCatalogMapper(t *testing.T) {
	db := NewDatabase()
	mapper := CatalogProductMapper(PaperCatalog())
	added, err := LoadNVDJSON(db, strings.NewReader(sampleFeed), mapper)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	c, _ := db.Get("CVE-2016-7153")
	// The catalogue mapper maps CPEs to the paper's product IDs.
	want := map[string]bool{ProdWin7: true, ProdWin10: true}
	for _, p := range c.Affected {
		if !want[p] {
			t.Errorf("unexpected mapped product %q", p)
		}
	}
	table := BuildSimilarityTable(db, []string{ProdWin7, ProdWin10, ProdChrome}, VulnFilter{})
	if table.Sim(ProdWin7, ProdWin10) != 1 {
		t.Errorf("win7/win10 should share their single vulnerability: %v", table.Sim(ProdWin7, ProdWin10))
	}
	if table.Sim(ProdWin7, ProdChrome) != 0 {
		t.Error("win7/chrome should share nothing")
	}
}

func TestLoadNVDJSONErrors(t *testing.T) {
	if _, err := LoadNVDJSON(nil, strings.NewReader(sampleFeed), nil); err == nil {
		t.Error("nil database should be rejected")
	}
	db := NewDatabase()
	if _, err := LoadNVDJSON(db, strings.NewReader("{broken"), nil); err == nil {
		t.Error("malformed JSON should fail")
	}
	// Duplicate CVEs across feeds keep the first occurrence without error.
	if _, err := LoadNVDJSON(db, strings.NewReader(sampleFeed), nil); err != nil {
		t.Fatal(err)
	}
	added, err := LoadNVDJSON(db, strings.NewReader(sampleFeed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Errorf("re-loading the same feed should add 0 records, got %d", added)
	}
}

func TestParseCPEAny(t *testing.T) {
	p, err := ParseCPEAny("cpe:2.3:a:mozilla:firefox:52.0:*:*:*:*:*:*:*")
	if err != nil {
		t.Fatalf("ParseCPEAny: %v", err)
	}
	if p.ID != "firefox_52.0" || p.Vendor != "mozilla" || p.Kind != ServiceGeneric {
		t.Errorf("parsed %+v", p)
	}
	o, err := ParseCPEAny("cpe:2.3:o:canonical:ubuntu_linux:14.04:*:*:*:*:*:*:*")
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != ServiceOS {
		t.Error("part 'o' should map to ServiceOS")
	}
	if _, err := ParseCPEAny("cpe:2.3:a:*:*"); err == nil {
		t.Error("wildcard vendor/product should be rejected")
	}
	if _, err := ParseCPEAny("cpe:2.3:a"); err == nil {
		t.Error("truncated CPE 2.3 should be rejected")
	}
	legacy, err := ParseCPEAny("cpe:/o:debian:debian_linux:8.0")
	if err != nil {
		t.Fatal(err)
	}
	if legacy.ID != "debian_linux_8.0" {
		t.Errorf("legacy CPE parsed to %+v", legacy)
	}
}

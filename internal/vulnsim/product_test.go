package vulnsim

import (
	"errors"
	"strings"
	"testing"
)

func TestParseCPE(t *testing.T) {
	tests := []struct {
		name    string
		uri     string
		want    Product
		wantErr bool
	}{
		{
			name: "os with version",
			uri:  "cpe:/o:microsoft:windows_7:sp1",
			want: Product{ID: "windows_7_sp1", Vendor: "microsoft", Name: "windows_7", Version: "sp1", Kind: ServiceOS},
		},
		{
			name: "application without version",
			uri:  "cpe:/a:mozilla:firefox",
			want: Product{ID: "firefox", Vendor: "mozilla", Name: "firefox", Kind: ServiceGeneric},
		},
		{
			name: "application with dash version",
			uri:  "cpe:/a:microsoft:edge:-",
			want: Product{ID: "edge", Vendor: "microsoft", Name: "edge", Version: "-", Kind: ServiceGeneric},
		},
		{name: "missing prefix", uri: "cpe:o:microsoft:windows", wantErr: true},
		{name: "too few fields", uri: "cpe:/o:microsoft", wantErr: true},
		{name: "empty vendor", uri: "cpe:/a::chrome", wantErr: true},
		{name: "empty", uri: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseCPE(tt.uri)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseCPE(%q) expected error, got %+v", tt.uri, got)
				}
				if !errors.Is(err, ErrBadCPE) {
					t.Fatalf("ParseCPE(%q) error %v is not ErrBadCPE", tt.uri, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseCPE(%q) unexpected error: %v", tt.uri, err)
			}
			if got != tt.want {
				t.Fatalf("ParseCPE(%q) = %+v, want %+v", tt.uri, got, tt.want)
			}
		})
	}
}

func TestProductCPERoundTrip(t *testing.T) {
	for _, p := range append(PaperOSProducts(), PaperBrowserProducts()...) {
		uri := p.CPE()
		parsed, err := ParseCPE(uri)
		if err != nil {
			t.Fatalf("ParseCPE(%q): %v", uri, err)
		}
		if parsed.Vendor != p.Vendor || parsed.Name != p.Name {
			t.Errorf("round trip of %q lost vendor/name: got %+v", uri, parsed)
		}
	}
}

func TestProductCPEPart(t *testing.T) {
	osProd := Product{ID: "x", Vendor: "v", Name: "n", Kind: ServiceOS}
	if !strings.HasPrefix(osProd.CPE(), "cpe:/o:") {
		t.Errorf("OS product CPE should use part 'o': %s", osProd.CPE())
	}
	app := Product{ID: "x", Vendor: "v", Name: "n", Kind: ServiceWebBrowser}
	if !strings.HasPrefix(app.CPE(), "cpe:/a:") {
		t.Errorf("application product CPE should use part 'a': %s", app.CPE())
	}
}

func TestServiceKindString(t *testing.T) {
	tests := []struct {
		kind ServiceKind
		want string
	}{
		{ServiceOS, "os"},
		{ServiceWebBrowser, "web_browser"},
		{ServiceDatabase, "database"},
		{ServiceGeneric, "generic"},
		{ServiceKind(99), "service(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("ServiceKind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestCatalog(t *testing.T) {
	c, err := NewCatalog(PaperOSProducts()...)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	if c.Len() != 9 {
		t.Fatalf("catalog has %d products, want 9", c.Len())
	}
	if _, ok := c.Get(ProdWin7); !ok {
		t.Errorf("catalog should contain %q", ProdWin7)
	}
	if _, ok := c.Get("nonexistent"); ok {
		t.Errorf("catalog should not contain nonexistent product")
	}
	if got := len(c.ByKind(ServiceOS)); got != 9 {
		t.Errorf("ByKind(ServiceOS) = %d products, want 9", got)
	}
	if got := len(c.ByKind(ServiceDatabase)); got != 0 {
		t.Errorf("ByKind(ServiceDatabase) = %d products, want 0", got)
	}
	ids := c.IDs()
	if len(ids) != 9 || ids[0] != ProdWinXP {
		t.Errorf("IDs() = %v, want insertion order starting with %q", ids, ProdWinXP)
	}
}

func TestCatalogDuplicate(t *testing.T) {
	_, err := NewCatalog(
		Product{ID: "a", Vendor: "v", Name: "a"},
		Product{ID: "a", Vendor: "v", Name: "a"},
	)
	if err == nil {
		t.Fatal("NewCatalog with duplicate IDs should fail")
	}
}

func TestCatalogEmptyID(t *testing.T) {
	c, _ := NewCatalog()
	if err := c.Add(Product{}); err == nil {
		t.Fatal("Add with empty ID should fail")
	}
}

func TestCatalogProductsIsCopy(t *testing.T) {
	c := MustCatalog(PaperDatabaseProducts()...)
	ps := c.Products()
	ps[0].ID = "mutated"
	if p, _ := c.Get(ProdMSSQL08); p.ID == "mutated" {
		t.Error("Products() must return a copy")
	}
}

func TestMustCatalogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCatalog with duplicates should panic")
		}
	}()
	MustCatalog(Product{ID: "a", Vendor: "v", Name: "a"}, Product{ID: "a", Vendor: "v", Name: "a"})
}

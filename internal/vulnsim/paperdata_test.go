package vulnsim

import (
	"math"
	"testing"
)

func TestPaperOSTableEntries(t *testing.T) {
	table := PaperOSTable()
	if err := table.Validate(); err != nil {
		t.Fatalf("Table II should validate: %v", err)
	}
	tests := []struct {
		a, b   string
		sim    float64
		shared int
	}{
		{ProdWin7, ProdWinXP, 0.278, 328},
		{ProdWin81, ProdWin7, 0.228, 298},
		{ProdWin10, ProdWin81, 0.697, 421},
		{ProdWin10, ProdWinXP, 0, 0},
		{ProdDebian, ProdUbuntu, 0.208, 195},
		{ProdMacOS, ProdWin7, 0.081, 109},
		{ProdFedora, ProdSuse, 0.116, 89},
		{ProdUbuntu, ProdWinXP, 0, 0},
	}
	for _, tt := range tests {
		if got := table.Sim(tt.a, tt.b); math.Abs(got-tt.sim) > 1e-9 {
			t.Errorf("Sim(%s,%s) = %v, want %v", tt.a, tt.b, got, tt.sim)
		}
		e, _ := table.Entry(tt.a, tt.b)
		if e.Shared != tt.shared {
			t.Errorf("Shared(%s,%s) = %d, want %d", tt.a, tt.b, e.Shared, tt.shared)
		}
	}
	if got := table.Total(ProdWin7); got != 1028 {
		t.Errorf("Total(win7) = %d, want 1028", got)
	}
	if got := table.Total(ProdFedora); got != 367 {
		t.Errorf("Total(fedora) = %d, want 367", got)
	}
}

func TestPaperBrowserTableEntries(t *testing.T) {
	table := PaperBrowserTable()
	if err := table.Validate(); err != nil {
		t.Fatalf("Table III should validate: %v", err)
	}
	tests := []struct {
		a, b string
		sim  float64
	}{
		{ProdIE10, ProdIE8, 0.386},
		{ProdEdge, ProdIE10, 0.121},
		{ProdSeaMonkey, ProdFirefox, 0.450},
		{ProdChrome, ProdIE8, 0},
		{ProdSafari, ProdChrome, 0.009},
	}
	for _, tt := range tests {
		if got := table.Sim(tt.a, tt.b); math.Abs(got-tt.sim) > 1e-9 {
			t.Errorf("Sim(%s,%s) = %v, want %v", tt.a, tt.b, got, tt.sim)
		}
	}
	if got := table.Total(ProdChrome); got != 1661 {
		t.Errorf("Total(chrome) = %d, want 1661", got)
	}
}

func TestPaperDatabaseTable(t *testing.T) {
	table := PaperDatabaseTable()
	if err := table.Validate(); err != nil {
		t.Fatalf("database table should validate: %v", err)
	}
	if got := table.Sim(ProdMySQL55, ProdMariaDB10); got <= table.Sim(ProdMySQL55, ProdMSSQL08) {
		t.Error("MySQL/MariaDB should be more similar than MySQL/MSSQL")
	}
	if got := table.Sim(ProdMSSQL08, ProdMSSQL14); got == 0 {
		t.Error("the two SQL Server releases should share vulnerabilities")
	}
}

// TestPaperTablesConsistentWithJaccard checks that every published similarity
// value is consistent (up to the paper's 3-decimal rounding) with the Jaccard
// coefficient of the published shared counts and totals:
// sim ≈ shared / (|Va| + |Vb| - shared).
func TestPaperTablesConsistentWithJaccard(t *testing.T) {
	for name, table := range map[string]*SimilarityTable{
		"os":      PaperOSTable(),
		"browser": PaperBrowserTable(),
	} {
		products := table.Products()
		for i := 0; i < len(products); i++ {
			for j := 0; j < i; j++ {
				a, b := products[i], products[j]
				e, ok := table.Entry(a, b)
				if !ok || e.Shared == 0 {
					continue
				}
				union := table.Total(a) + table.Total(b) - e.Shared
				implied := float64(e.Shared) / float64(union)
				// Tolerance of 0.01 covers the paper's 3-decimal rounding and
				// the small residual inconsistencies of the published counts
				// (e.g. Edge/IE10).
				if math.Abs(implied-e.Similarity) > 0.01 {
					t.Errorf("%s table %s/%s: published sim %.3f inconsistent with counts (implies %.3f)",
						name, a, b, e.Similarity, implied)
				}
			}
		}
	}
}

func TestPaperCatalog(t *testing.T) {
	c := PaperCatalog()
	if c.Len() != 21 {
		t.Fatalf("paper catalog has %d products, want 21", c.Len())
	}
	if got := len(c.ByKind(ServiceOS)); got != 9 {
		t.Errorf("catalog has %d OS products, want 9", got)
	}
	if got := len(c.ByKind(ServiceWebBrowser)); got != 8 {
		t.Errorf("catalog has %d browser products, want 8", got)
	}
	if got := len(c.ByKind(ServiceDatabase)); got != 4 {
		t.Errorf("catalog has %d database products, want 4", got)
	}
}

func TestPaperSimilarityMergesAllCategories(t *testing.T) {
	m := PaperSimilarity()
	if err := m.Validate(); err != nil {
		t.Fatalf("merged paper table should validate: %v", err)
	}
	if !m.Has(ProdWin7) || !m.Has(ProdChrome) || !m.Has(ProdMariaDB10) {
		t.Error("merged table should cover OS, browser and database products")
	}
}

package vulnsim

import (
	"math"
	"testing"
	"testing/quick"
)

// weightedTestDB builds a corpus where the shared vulnerabilities between
// "x" and "y" are low severity, while "x" and "z" share a critical one.
func weightedTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	cves := []CVE{
		mustCVE(t, "CVE-2015-1001", 2.0, "x", "y"),
		mustCVE(t, "CVE-2015-1002", 2.0, "x", "y"),
		mustCVE(t, "CVE-2016-2001", 9.8, "x", "z"),
		mustCVE(t, "CVE-2016-2002", 5.0, "x"),
		mustCVE(t, "CVE-2016-2003", 5.0, "y"),
		mustCVE(t, "CVE-2016-2004", 5.0, "z"),
		mustCVE(t, "CVE-2000-3001", 9.0, "x", "y"),
	}
	if err := db.AddAll(cves); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestWeightedJaccardUnitWeightEqualsPlain(t *testing.T) {
	db := weightedTestDB(t)
	plain := Jaccard(db.VulnSet("x", VulnFilter{}), db.VulnSet("y", VulnFilter{}))
	weighted, err := WeightedJaccard(db, "x", "y", VulnFilter{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain-weighted) > 1e-12 {
		t.Errorf("unit-weight similarity %v should equal plain Jaccard %v", weighted, plain)
	}
}

func TestCVSSWeightChangesRanking(t *testing.T) {
	db := weightedTestDB(t)
	plainXY := Jaccard(db.VulnSet("x", VulnFilter{}), db.VulnSet("y", VulnFilter{}))
	plainXZ := Jaccard(db.VulnSet("x", VulnFilter{}), db.VulnSet("z", VulnFilter{}))
	if plainXY <= plainXZ {
		t.Fatalf("test corpus should make x/y more similar than x/z unweighted: %v vs %v", plainXY, plainXZ)
	}
	wXY, err := WeightedJaccard(db, "x", "y", VulnFilter{ToYear: 2016, FromYear: 2010}, CVSSWeight)
	if err != nil {
		t.Fatal(err)
	}
	wXZ, err := WeightedJaccard(db, "x", "z", VulnFilter{ToYear: 2016, FromYear: 2010}, CVSSWeight)
	if err != nil {
		t.Fatal(err)
	}
	// Restricted to the 2010-2016 window, x/y share only low-severity
	// vulnerabilities while x/z share a critical one; CVSS weighting should
	// rank x/z as the more dangerous pair.
	if wXZ <= wXY {
		t.Errorf("CVSS weighting should rank x/z (%v) above x/y (%v)", wXZ, wXY)
	}
}

func TestRecencyWeight(t *testing.T) {
	w := RecencyWeight(2016, 5)
	recent := w(CVE{Year: 2016})
	old := w(CVE{Year: 2006})
	if math.Abs(recent-1) > 1e-12 {
		t.Errorf("current-year weight = %v, want 1", recent)
	}
	if math.Abs(old-0.25) > 1e-12 {
		t.Errorf("10-year-old weight = %v, want 0.25 (two half-lives)", old)
	}
	if w(CVE{Year: 2030}) != 1 {
		t.Error("future vulnerabilities should not be boosted above 1")
	}
	combined := CombineWeights(CVSSWeight, w)
	if got := combined(CVE{Year: 2016, CVSS: 5}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("combined weight = %v, want 0.5", got)
	}
}

func TestWeightedJaccardProperties(t *testing.T) {
	db := weightedTestDB(t)
	products := []string{"x", "y", "z"}
	inRangeAndSymmetric := func(ai, bi uint8) bool {
		a := products[int(ai)%len(products)]
		b := products[int(bi)%len(products)]
		ab, err := WeightedJaccard(db, a, b, VulnFilter{}, CVSSWeight)
		if err != nil {
			return false
		}
		ba, err := WeightedJaccard(db, b, a, VulnFilter{}, CVSSWeight)
		if err != nil {
			return false
		}
		if ab < 0 || ab > 1 {
			return false
		}
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		if a == b && ab != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(inRangeAndSymmetric, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWeightedJaccardEdgeCases(t *testing.T) {
	db := weightedTestDB(t)
	if _, err := WeightedJaccard(nil, "x", "y", VulnFilter{}, nil); err == nil {
		t.Error("nil database should be rejected")
	}
	sim, err := WeightedJaccard(db, "unknown1", "unknown2", VulnFilter{}, CVSSWeight)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 0 {
		t.Errorf("unknown products should have similarity 0, got %v", sim)
	}
	// Negative weights are clamped to zero rather than producing negative
	// similarities.
	neg := func(CVE) float64 { return -1 }
	sim, err = WeightedJaccard(db, "x", "y", VulnFilter{}, neg)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 0 {
		t.Errorf("all-negative weights should give similarity 0, got %v", sim)
	}
}

func TestBuildWeightedSimilarityTable(t *testing.T) {
	db := weightedTestDB(t)
	table, err := BuildWeightedSimilarityTable(db, []string{"x", "y", "z"}, VulnFilter{}, CVSSWeight)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(); err != nil {
		t.Fatalf("weighted table should validate: %v", err)
	}
	if table.Total("x") != 5 {
		t.Errorf("total of x = %d, want 5", table.Total("x"))
	}
	e, ok := table.Entry("x", "y")
	if !ok || e.Shared != 3 {
		t.Errorf("shared(x,y) = %+v, want 3 (unweighted count retained)", e)
	}
	if _, err := BuildWeightedSimilarityTable(nil, []string{"x"}, VulnFilter{}, nil); err == nil {
		t.Error("nil database should be rejected")
	}
}

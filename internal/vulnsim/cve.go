package vulnsim

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// CVE is a single vulnerability record, mirroring the fields of an NVD entry
// that matter for the similarity metric: the CVE identifier and the list of
// affected products (the CPE list of Table I in the paper).
type CVE struct {
	// ID is the CVE identifier, e.g. "CVE-2016-7153".
	ID string `json:"id"`
	// Year is the publication year parsed from the identifier.
	Year int `json:"year"`
	// Affected lists the product IDs affected by this vulnerability.
	Affected []string `json:"affected"`
	// CVSS is the base score in [0,10].  It is not used by the similarity
	// metric itself but is kept so that synthetic corpora look like real
	// NVD data and so that downstream consumers (e.g. attack simulators
	// weighting exploits) can use it.
	CVSS float64 `json:"cvss"`
}

var cveIDPattern = regexp.MustCompile(`^CVE-(\d{4})-(\d{4,})$`)

// ErrBadCVEID is returned when a CVE identifier does not match the
// CVE-YYYY-NNNN format.
var ErrBadCVEID = errors.New("vulnsim: malformed CVE identifier")

// ParseCVEID validates a CVE identifier and returns its publication year.
func ParseCVEID(id string) (year int, err error) {
	m := cveIDPattern.FindStringSubmatch(id)
	if m == nil {
		return 0, fmt.Errorf("%w: %q", ErrBadCVEID, id)
	}
	year, err = strconv.Atoi(m[1])
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrBadCVEID, id)
	}
	return year, nil
}

// NewCVE constructs a CVE record, validating the identifier and copying the
// affected-product list.
func NewCVE(id string, cvss float64, affected ...string) (CVE, error) {
	year, err := ParseCVEID(id)
	if err != nil {
		return CVE{}, err
	}
	if cvss < 0 || cvss > 10 {
		return CVE{}, fmt.Errorf("vulnsim: CVSS score %.2f out of range [0,10]", cvss)
	}
	aff := make([]string, len(affected))
	copy(aff, affected)
	return CVE{ID: id, Year: year, Affected: aff, CVSS: cvss}, nil
}

// Database is an in-memory CVE corpus: the offline stand-in for NVD.  It
// indexes vulnerabilities by affected product so that per-product
// vulnerability sets (Vx in Definition 1) can be extracted efficiently.
type Database struct {
	cves      []CVE
	byID      map[string]int
	byProduct map[string][]int
}

// NewDatabase creates an empty CVE database.
func NewDatabase() *Database {
	return &Database{
		byID:      make(map[string]int),
		byProduct: make(map[string][]int),
	}
}

// Add inserts a CVE record.  Re-adding an existing identifier returns an
// error; NVD identifiers are unique.
func (db *Database) Add(c CVE) error {
	if _, err := ParseCVEID(c.ID); err != nil {
		return err
	}
	if _, ok := db.byID[c.ID]; ok {
		return fmt.Errorf("vulnsim: duplicate CVE %q", c.ID)
	}
	idx := len(db.cves)
	db.cves = append(db.cves, c)
	db.byID[c.ID] = idx
	for _, prod := range c.Affected {
		db.byProduct[prod] = append(db.byProduct[prod], idx)
	}
	return nil
}

// AddAll inserts every CVE, stopping at the first error.
func (db *Database) AddAll(cves []CVE) error {
	for _, c := range cves {
		if err := db.Add(c); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of CVE records in the database.
func (db *Database) Len() int { return len(db.cves) }

// Get returns the CVE with the given identifier.
func (db *Database) Get(id string) (CVE, bool) {
	idx, ok := db.byID[id]
	if !ok {
		return CVE{}, false
	}
	return db.cves[idx], true
}

// All returns a copy of every CVE record in insertion order.
func (db *Database) All() []CVE {
	out := make([]CVE, len(db.cves))
	copy(out, db.cves)
	return out
}

// VulnFilter restricts which vulnerabilities count toward a product's
// vulnerability set.  The paper uses the 1999-2016 window for Tables II/III.
type VulnFilter struct {
	// FromYear is the first publication year included (inclusive).
	// Zero means no lower bound.
	FromYear int
	// ToYear is the last publication year included (inclusive).
	// Zero means no upper bound.
	ToYear int
	// MinCVSS excludes vulnerabilities with a lower base score.
	MinCVSS float64
}

func (f VulnFilter) match(c CVE) bool {
	if f.FromYear != 0 && c.Year < f.FromYear {
		return false
	}
	if f.ToYear != 0 && c.Year > f.ToYear {
		return false
	}
	if c.CVSS < f.MinCVSS {
		return false
	}
	return true
}

// VulnSet returns the set of CVE identifiers affecting the given product,
// after applying the filter.  This is Vx of Definition 1.
func (db *Database) VulnSet(productID string, filter VulnFilter) map[string]struct{} {
	out := make(map[string]struct{})
	for _, idx := range db.byProduct[productID] {
		c := db.cves[idx]
		if filter.match(c) {
			out[c.ID] = struct{}{}
		}
	}
	return out
}

// VulnCount returns |Vx| for the given product under the filter.
func (db *Database) VulnCount(productID string, filter VulnFilter) int {
	n := 0
	for _, idx := range db.byProduct[productID] {
		if filter.match(db.cves[idx]) {
			n++
		}
	}
	return n
}

// Products returns the sorted list of product IDs that appear in at least one
// CVE record.
func (db *Database) Products() []string {
	out := make([]string, 0, len(db.byProduct))
	for p := range db.byProduct {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SharedVulns returns the CVE identifiers shared by two products under the
// filter, i.e. Vx ∩ Vy.  The result is sorted for determinism.
func (db *Database) SharedVulns(a, b string, filter VulnFilter) []string {
	va := db.VulnSet(a, filter)
	vb := db.VulnSet(b, filter)
	if len(vb) < len(va) {
		va, vb = vb, va
	}
	var shared []string
	for id := range va {
		if _, ok := vb[id]; ok {
			shared = append(shared, id)
		}
	}
	sort.Strings(shared)
	return shared
}

// Summary renders a compact NVD-style summary line for a CVE (similar in
// spirit to Table I of the paper), listing the affected CPEs if the catalog
// can resolve them and the raw product IDs otherwise.
func (db *Database) Summary(id string, catalog *Catalog) (string, error) {
	c, ok := db.Get(id)
	if !ok {
		return "", fmt.Errorf("vulnsim: unknown CVE %q", id)
	}
	parts := make([]string, 0, len(c.Affected))
	for _, prod := range c.Affected {
		if catalog != nil {
			if p, ok := catalog.Get(prod); ok {
				parts = append(parts, p.CPE())
				continue
			}
		}
		parts = append(parts, prod)
	}
	return fmt.Sprintf("%s (cvss %.1f): %s", c.ID, c.CVSS, strings.Join(parts, ", ")), nil
}

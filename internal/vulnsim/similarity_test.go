package vulnsim

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func setOf(ids ...string) map[string]struct{} {
	s := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

func TestJaccard(t *testing.T) {
	tests := []struct {
		name string
		a, b map[string]struct{}
		want float64
	}{
		{"both empty", setOf(), setOf(), 0},
		{"identical", setOf("a", "b"), setOf("a", "b"), 1},
		{"disjoint", setOf("a"), setOf("b"), 0},
		{"half", setOf("a", "b"), setOf("b", "c"), 1.0 / 3.0},
		{"subset", setOf("a"), setOf("a", "b"), 0.5},
	}
	for _, tt := range tests {
		if got := Jaccard(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: Jaccard = %v, want %v", tt.name, got, tt.want)
		}
	}
}

// setFromBytes turns fuzz input into a small string set.
func setFromBytes(bs []byte) map[string]struct{} {
	s := make(map[string]struct{})
	for _, b := range bs {
		s[string('a'+b%26)] = struct{}{}
	}
	return s
}

func TestJaccardProperties(t *testing.T) {
	symmetric := func(xs, ys []byte) bool {
		a, b := setFromBytes(xs), setFromBytes(ys)
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("Jaccard not symmetric: %v", err)
	}
	inRange := func(xs, ys []byte) bool {
		v := Jaccard(setFromBytes(xs), setFromBytes(ys))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Errorf("Jaccard out of [0,1]: %v", err)
	}
	selfIdentity := func(xs []byte) bool {
		a := setFromBytes(xs)
		if len(a) == 0 {
			return Jaccard(a, a) == 0
		}
		return Jaccard(a, a) == 1
	}
	if err := quick.Check(selfIdentity, nil); err != nil {
		t.Errorf("Jaccard self-similarity violated: %v", err)
	}
}

func TestSimilarityTableBasics(t *testing.T) {
	table := NewSimilarityTable([]string{"a", "b", "c"})
	if err := table.Set("a", "b", 0.5, 10); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := table.SetTotal("a", 20); err != nil {
		t.Fatalf("SetTotal: %v", err)
	}
	if got := table.Sim("a", "b"); got != 0.5 {
		t.Errorf("Sim(a,b) = %v, want 0.5", got)
	}
	if got := table.Sim("b", "a"); got != 0.5 {
		t.Errorf("Sim(b,a) = %v, want 0.5 (symmetry)", got)
	}
	if got := table.Sim("a", "a"); got != 1 {
		t.Errorf("Sim(a,a) = %v, want 1", got)
	}
	if got := table.Sim("a", "c"); got != 0 {
		t.Errorf("Sim(a,c) = %v, want default 0", got)
	}
	if got := table.Sim("a", "zz"); got != 0 {
		t.Errorf("Sim with unknown product = %v, want default 0", got)
	}
	if got := table.Total("a"); got != 20 {
		t.Errorf("Total(a) = %d, want 20", got)
	}
	e, ok := table.Entry("b", "a")
	if !ok || e.Shared != 10 {
		t.Errorf("Entry(b,a) = %+v %v, want shared 10", e, ok)
	}
	if _, ok := table.Entry("a", "a"); ok {
		t.Error("Entry of identical products should not exist")
	}
}

func TestSimilarityTableErrors(t *testing.T) {
	table := NewSimilarityTable([]string{"a", "b"})
	if err := table.Set("a", "a", 0.5, 1); err == nil {
		t.Error("self similarity should be rejected")
	}
	if err := table.Set("a", "x", 0.5, 1); err == nil {
		t.Error("unknown product should be rejected")
	}
	if err := table.Set("a", "b", 1.5, 1); err == nil {
		t.Error("similarity > 1 should be rejected")
	}
	if err := table.Set("a", "b", -0.1, 1); err == nil {
		t.Error("negative similarity should be rejected")
	}
	if err := table.Set("a", "b", math.NaN(), 1); err == nil {
		t.Error("NaN similarity should be rejected")
	}
	if err := table.Set("a", "b", 0.5, -1); err == nil {
		t.Error("negative shared count should be rejected")
	}
	if err := table.SetTotal("x", 5); err == nil {
		t.Error("SetTotal of unknown product should be rejected")
	}
	if err := table.SetDefault(2); err == nil {
		t.Error("default similarity > 1 should be rejected")
	}
}

func TestSimilarityTableDefault(t *testing.T) {
	table := NewSimilarityTable([]string{"a", "b"})
	if err := table.SetDefault(0.1); err != nil {
		t.Fatalf("SetDefault: %v", err)
	}
	if got := table.Sim("a", "b"); got != 0.1 {
		t.Errorf("Sim with default = %v, want 0.1", got)
	}
	if got := table.Default(); got != 0.1 {
		t.Errorf("Default() = %v, want 0.1", got)
	}
}

func TestSimilarityTableValidate(t *testing.T) {
	empty := NewSimilarityTable(nil)
	if err := empty.Validate(); err == nil {
		t.Error("empty table should fail validation")
	}
	table := NewSimilarityTable([]string{"a", "b"})
	_ = table.SetTotal("a", 5)
	_ = table.SetTotal("b", 5)
	_ = table.Set("a", "b", 0.9, 10)
	if err := table.Validate(); err == nil {
		t.Error("shared count exceeding totals should fail validation")
	}
	ok := NewSimilarityTable([]string{"a", "b"})
	_ = ok.SetTotal("a", 20)
	_ = ok.SetTotal("b", 20)
	_ = ok.Set("a", "b", 0.25, 8)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid table should pass validation: %v", err)
	}
}

func TestMerge(t *testing.T) {
	merged := Merge(PaperOSTable(), PaperBrowserTable(), PaperDatabaseTable())
	if got := merged.Sim(ProdWin7, ProdWinXP); math.Abs(got-0.278) > 1e-9 {
		t.Errorf("merged OS similarity lost: %v", got)
	}
	if got := merged.Sim(ProdFirefox, ProdSeaMonkey); math.Abs(got-0.450) > 1e-9 {
		t.Errorf("merged browser similarity lost: %v", got)
	}
	if got := merged.Sim(ProdMySQL55, ProdMariaDB10); got == 0 {
		t.Error("merged database similarity lost")
	}
	if got := merged.Sim(ProdWin7, ProdChrome); got != 0 {
		t.Errorf("cross-category similarity should default to 0, got %v", got)
	}
	if len(merged.Products()) != 9+8+4 {
		t.Errorf("merged table has %d products, want 21", len(merged.Products()))
	}
}

func TestBuildSimilarityTable(t *testing.T) {
	db := buildTestDB(t)
	table := BuildSimilarityTable(db, []string{"win7", "winxp", "chrome50", "firefox"}, VulnFilter{})
	// win7 has 4 vulns, winxp 2, shared 2 -> 2/4 = 0.5.
	if got := table.Sim("win7", "winxp"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sim(win7,winxp) = %v, want 0.5", got)
	}
	if got := table.Total("win7"); got != 4 {
		t.Errorf("Total(win7) = %d, want 4", got)
	}
	e, _ := table.Entry("win7", "winxp")
	if e.Shared != 2 {
		t.Errorf("Shared(win7,winxp) = %d, want 2", e.Shared)
	}
	// chrome50: 2 vulns, firefox: 1, shared 1 -> 1/2.
	if got := table.Sim("chrome50", "firefox"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sim(chrome50,firefox) = %v, want 0.5", got)
	}
	if got := table.Sim("win7", "chrome50"); got != 0 {
		t.Errorf("Sim(win7,chrome50) = %v, want 0", got)
	}
	if err := table.Validate(); err != nil {
		t.Errorf("built table should validate: %v", err)
	}
}

func TestSimilarityTableJSONRoundTrip(t *testing.T) {
	src := PaperBrowserTable()
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var dst SimilarityTable
	if err := json.Unmarshal(data, &dst); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, a := range src.Products() {
		if dst.Total(a) != src.Total(a) {
			t.Errorf("total of %q lost in round trip", a)
		}
		for _, b := range src.Products() {
			if src.Sim(a, b) != dst.Sim(a, b) {
				t.Errorf("Sim(%s,%s) changed after round trip: %v vs %v", a, b, src.Sim(a, b), dst.Sim(a, b))
			}
		}
	}
}

func TestSimilarityTableUnmarshalInvalid(t *testing.T) {
	var table SimilarityTable
	if err := json.Unmarshal([]byte(`{"products":["a","b"],"entries":[{"a":"a","b":"b","similarity":7}]}`), &table); err == nil {
		t.Error("out-of-range similarity should fail to unmarshal")
	}
	if err := json.Unmarshal([]byte(`not json`), &table); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestRender(t *testing.T) {
	out := PaperOSTable().RenderString()
	if !strings.Contains(out, "1.00 (1028)") {
		t.Errorf("render should contain the win7 diagonal, got:\n%s", out)
	}
	if !strings.Contains(out, "0.278") {
		t.Errorf("render should contain the win7/winxp similarity, got:\n%s", out)
	}
}

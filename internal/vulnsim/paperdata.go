package vulnsim

// This file embeds the similarity data published in the paper:
//
//   * Table II  — pairwise vulnerability similarity of 9 common operating
//     systems (CVE/NVD, 1999-2016),
//   * Table III — pairwise vulnerability similarity of 8 common web browsers,
//   * a database-server table constructed "in the same way as described in
//     Section III" (the paper uses it for the case study but does not print
//     it; we provide estimated values with the same structure and document
//     the estimation in EXPERIMENTS.md).
//
// Product identifiers follow the short names used throughout this library.

// Operating-system product IDs of Table II.
const (
	ProdWinXP  = "winxp"
	ProdWin7   = "win7"
	ProdWin81  = "win81"
	ProdWin10  = "win10"
	ProdUbuntu = "ubt1404"
	ProdDebian = "deb80"
	ProdMacOS  = "mac105"
	ProdSuse   = "suse132"
	ProdFedora = "fedora"
)

// Web-browser product IDs of Table III.
const (
	ProdIE8       = "ie8"
	ProdIE10      = "ie10"
	ProdEdge      = "edge"
	ProdChrome    = "chrome50"
	ProdFirefox   = "firefox"
	ProdSafari    = "safari"
	ProdSeaMonkey = "seamonkey"
	ProdOpera     = "opera"
)

// Database-server product IDs of Table IV (case study).
const (
	ProdMSSQL08   = "mssql08"
	ProdMSSQL14   = "mssql14"
	ProdMySQL55   = "mysql55"
	ProdMariaDB10 = "mariadb10"
)

// PaperOSProducts returns the Product records of the nine operating systems
// of Table II.
func PaperOSProducts() []Product {
	return []Product{
		{ID: ProdWinXP, Vendor: "microsoft", Name: "windows_xp", Version: "sp2", Kind: ServiceOS},
		{ID: ProdWin7, Vendor: "microsoft", Name: "windows_7", Version: "", Kind: ServiceOS},
		{ID: ProdWin81, Vendor: "microsoft", Name: "windows_8.1", Version: "", Kind: ServiceOS},
		{ID: ProdWin10, Vendor: "microsoft", Name: "windows_10", Version: "", Kind: ServiceOS},
		{ID: ProdUbuntu, Vendor: "canonical", Name: "ubuntu_linux", Version: "14.04", Kind: ServiceOS},
		{ID: ProdDebian, Vendor: "debian", Name: "debian_linux", Version: "8.0", Kind: ServiceOS},
		{ID: ProdMacOS, Vendor: "apple", Name: "mac_os_x", Version: "10.5", Kind: ServiceOS},
		{ID: ProdSuse, Vendor: "opensuse", Name: "opensuse", Version: "13.2", Kind: ServiceOS},
		{ID: ProdFedora, Vendor: "fedoraproject", Name: "fedora", Version: "", Kind: ServiceOS},
	}
}

// PaperBrowserProducts returns the Product records of the eight browsers of
// Table III.
func PaperBrowserProducts() []Product {
	return []Product{
		{ID: ProdIE8, Vendor: "microsoft", Name: "internet_explorer", Version: "8", Kind: ServiceWebBrowser},
		{ID: ProdIE10, Vendor: "microsoft", Name: "internet_explorer", Version: "10", Kind: ServiceWebBrowser},
		{ID: ProdEdge, Vendor: "microsoft", Name: "edge", Version: "", Kind: ServiceWebBrowser},
		{ID: ProdChrome, Vendor: "google", Name: "chrome", Version: "50", Kind: ServiceWebBrowser},
		{ID: ProdFirefox, Vendor: "mozilla", Name: "firefox", Version: "", Kind: ServiceWebBrowser},
		{ID: ProdSafari, Vendor: "apple", Name: "safari", Version: "", Kind: ServiceWebBrowser},
		{ID: ProdSeaMonkey, Vendor: "mozilla", Name: "seamonkey", Version: "", Kind: ServiceWebBrowser},
		{ID: ProdOpera, Vendor: "opera", Name: "opera_browser", Version: "", Kind: ServiceWebBrowser},
	}
}

// PaperDatabaseProducts returns the Product records of the four database
// servers used by the case study (Table IV).
func PaperDatabaseProducts() []Product {
	return []Product{
		{ID: ProdMSSQL08, Vendor: "microsoft", Name: "sql_server", Version: "2008", Kind: ServiceDatabase},
		{ID: ProdMSSQL14, Vendor: "microsoft", Name: "sql_server", Version: "2014", Kind: ServiceDatabase},
		{ID: ProdMySQL55, Vendor: "oracle", Name: "mysql", Version: "5.5", Kind: ServiceDatabase},
		{ID: ProdMariaDB10, Vendor: "mariadb", Name: "mariadb", Version: "10", Kind: ServiceDatabase},
	}
}

// PaperCatalog returns a catalog with every product appearing in the paper's
// tables (II, III) and case study (IV).
func PaperCatalog() *Catalog {
	var all []Product
	all = append(all, PaperOSProducts()...)
	all = append(all, PaperBrowserProducts()...)
	all = append(all, PaperDatabaseProducts()...)
	return MustCatalog(all...)
}

type paperCell struct {
	a, b   string
	sim    float64
	shared int
}

func buildPaperTable(products []string, totals map[string]int, cells []paperCell) *SimilarityTable {
	t := NewSimilarityTable(products)
	for p, total := range totals {
		// The products and totals are package constants; errors indicate a
		// programming error in this file and would be caught by unit tests.
		_ = t.SetTotal(p, total)
	}
	for _, c := range cells {
		_ = t.Set(c.a, c.b, c.sim, c.shared)
	}
	return t
}

// PaperOSTable returns Table II of the paper verbatim.
func PaperOSTable() *SimilarityTable {
	products := []string{
		ProdWinXP, ProdWin7, ProdWin81, ProdWin10, ProdUbuntu,
		ProdDebian, ProdMacOS, ProdSuse, ProdFedora,
	}
	totals := map[string]int{
		ProdWinXP: 479, ProdWin7: 1028, ProdWin81: 572, ProdWin10: 453,
		ProdUbuntu: 612, ProdDebian: 519, ProdMacOS: 424, ProdSuse: 492,
		ProdFedora: 367,
	}
	cells := []paperCell{
		{ProdWin7, ProdWinXP, 0.278, 328},
		{ProdWin81, ProdWinXP, 0.009, 10},
		{ProdWin81, ProdWin7, 0.228, 298},
		{ProdWin10, ProdWin7, 0.124, 164},
		{ProdWin10, ProdWin81, 0.697, 421},
		{ProdDebian, ProdUbuntu, 0.208, 195},
		{ProdMacOS, ProdWin7, 0.081, 109},
		{ProdSuse, ProdUbuntu, 0.170, 161},
		{ProdSuse, ProdDebian, 0.112, 102},
		{ProdFedora, ProdUbuntu, 0.083, 75},
		{ProdFedora, ProdDebian, 0.049, 41},
		{ProdFedora, ProdMacOS, 0.001, 1},
		{ProdFedora, ProdSuse, 0.116, 89},
	}
	return buildPaperTable(products, totals, cells)
}

// PaperBrowserTable returns Table III of the paper with two typographical
// corrections documented in EXPERIMENTS.md:
//
//   - the published Opera/SeaMonkey cell reads "1.00 (492)", which would
//     exceed both products' totals; it is replaced by a small value
//     (0.004, 2 shared) consistent with the rest of the Opera row;
//   - the published SeaMonkey diagonal (492) is smaller than the printed
//     Firefox/SeaMonkey shared count (683), which is impossible for a
//     Jaccard table; the diagonal is corrected to 699, the value implied by
//     the published similarity 0.450 and the Firefox total.
func PaperBrowserTable() *SimilarityTable {
	products := []string{
		ProdIE8, ProdIE10, ProdEdge, ProdChrome, ProdFirefox,
		ProdSafari, ProdSeaMonkey, ProdOpera,
	}
	totals := map[string]int{
		ProdIE8: 349, ProdIE10: 513, ProdEdge: 194, ProdChrome: 1661,
		ProdFirefox: 1502, ProdSafari: 766, ProdSeaMonkey: 699, ProdOpera: 225,
	}
	cells := []paperCell{
		{ProdIE10, ProdIE8, 0.386, 240},
		{ProdEdge, ProdIE8, 0.014, 7},
		{ProdEdge, ProdIE10, 0.121, 73},
		{ProdChrome, ProdEdge, 0.001, 2},
		{ProdFirefox, ProdEdge, 0.001, 2},
		{ProdFirefox, ProdChrome, 0.005, 15},
		{ProdSafari, ProdEdge, 0.002, 2},
		{ProdSafari, ProdChrome, 0.009, 21},
		{ProdSafari, ProdFirefox, 0.003, 6},
		{ProdSeaMonkey, ProdChrome, 0.001, 3},
		{ProdSeaMonkey, ProdFirefox, 0.450, 683},
		{ProdSeaMonkey, ProdSafari, 0.001, 1},
		{ProdOpera, ProdEdge, 0.003, 1},
		{ProdOpera, ProdChrome, 0.003, 6},
		{ProdOpera, ProdFirefox, 0.004, 7},
		{ProdOpera, ProdSafari, 0.004, 4},
		{ProdOpera, ProdSeaMonkey, 0.004, 2},
	}
	return buildPaperTable(products, totals, cells)
}

// PaperDatabaseTable returns the database-server similarity table used by the
// case study.  The paper states these similarities are "obtained in the same
// way as described in Section III" but does not publish the numbers, so the
// values below are estimates built from the same CPE families: the two
// Microsoft SQL Server releases share a code base (moderate similarity), as
// do MySQL and its fork MariaDB (higher similarity), while cross-vendor pairs
// share essentially nothing.
func PaperDatabaseTable() *SimilarityTable {
	products := []string{ProdMSSQL08, ProdMSSQL14, ProdMySQL55, ProdMariaDB10}
	totals := map[string]int{
		ProdMSSQL08: 96, ProdMSSQL14: 54, ProdMySQL55: 587, ProdMariaDB10: 312,
	}
	cells := []paperCell{
		{ProdMSSQL14, ProdMSSQL08, 0.230, 28},
		{ProdMariaDB10, ProdMySQL55, 0.364, 240},
		{ProdMySQL55, ProdMSSQL08, 0.001, 1},
		{ProdMySQL55, ProdMSSQL14, 0.002, 1},
		{ProdMariaDB10, ProdMSSQL08, 0.0, 0},
		{ProdMariaDB10, ProdMSSQL14, 0.0, 0},
	}
	return buildPaperTable(products, totals, cells)
}

// PaperSimilarity returns the merged similarity table covering every product
// of the paper's tables (the table used by the case study and the examples).
func PaperSimilarity() *SimilarityTable {
	return Merge(PaperOSTable(), PaperBrowserTable(), PaperDatabaseTable())
}

package vulnsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Jaccard computes the Jaccard similarity coefficient of two sets represented
// as maps: |A ∩ B| / |A ∪ B|.  Two empty sets have similarity 0 by
// convention (the paper never compares two products with no recorded
// vulnerabilities; defining 0 keeps the metric well-behaved).
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Entry is one cell of a similarity table: the similarity value and the
// number of shared vulnerabilities (the bracketed number in Tables II/III).
type Entry struct {
	Similarity float64 `json:"similarity"`
	Shared     int     `json:"shared"`
}

// SimilarityTable stores symmetric pairwise vulnerability similarities for a
// set of products together with each product's total vulnerability count
// (the diagonal of Tables II/III).
type SimilarityTable struct {
	products []string
	index    map[string]int
	entries  map[[2]int]Entry
	totals   map[string]int
	// defaultSim is returned for pairs that are not present in the table.
	// The paper assumes unlisted pairs share no vulnerabilities (0).
	defaultSim float64
}

// NewSimilarityTable creates an empty table over the given products.
func NewSimilarityTable(products []string) *SimilarityTable {
	t := &SimilarityTable{
		index:   make(map[string]int, len(products)),
		entries: make(map[[2]int]Entry),
		totals:  make(map[string]int, len(products)),
	}
	for _, p := range products {
		if _, ok := t.index[p]; ok {
			continue
		}
		t.index[p] = len(t.products)
		t.products = append(t.products, p)
	}
	return t
}

// Products returns the product IDs covered by the table, in insertion order.
func (t *SimilarityTable) Products() []string {
	out := make([]string, len(t.products))
	copy(out, t.products)
	return out
}

// Has reports whether the table knows the product.
func (t *SimilarityTable) Has(product string) bool {
	_, ok := t.index[product]
	return ok
}

// SetTotal records the total number of vulnerabilities of a product (the
// diagonal entry of the paper's tables).
func (t *SimilarityTable) SetTotal(product string, total int) error {
	if _, ok := t.index[product]; !ok {
		return fmt.Errorf("vulnsim: unknown product %q", product)
	}
	t.totals[product] = total
	return nil
}

// Total returns the total vulnerability count of the product (0 if unknown).
func (t *SimilarityTable) Total(product string) int { return t.totals[product] }

// Set records the similarity between two distinct products.  The table is
// symmetric: Set(a,b,...) and Set(b,a,...) are equivalent.
func (t *SimilarityTable) Set(a, b string, sim float64, shared int) error {
	if a == b {
		return fmt.Errorf("vulnsim: cannot set self-similarity of %q (always 1)", a)
	}
	ia, ok := t.index[a]
	if !ok {
		return fmt.Errorf("vulnsim: unknown product %q", a)
	}
	ib, ok := t.index[b]
	if !ok {
		return fmt.Errorf("vulnsim: unknown product %q", b)
	}
	if sim < 0 || sim > 1 || math.IsNaN(sim) {
		return fmt.Errorf("vulnsim: similarity %v out of range [0,1]", sim)
	}
	if shared < 0 {
		return fmt.Errorf("vulnsim: negative shared count %d", shared)
	}
	if ib < ia {
		ia, ib = ib, ia
	}
	t.entries[[2]int{ia, ib}] = Entry{Similarity: sim, Shared: shared}
	return nil
}

// Sim returns the similarity between two products.  Identical products have
// similarity 1.  Pairs absent from the table fall back to the default
// similarity (0 unless changed with SetDefault).
func (t *SimilarityTable) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	ia, oka := t.index[a]
	ib, okb := t.index[b]
	if !oka || !okb {
		return t.defaultSim
	}
	if ib < ia {
		ia, ib = ib, ia
	}
	if e, ok := t.entries[[2]int{ia, ib}]; ok {
		return e.Similarity
	}
	return t.defaultSim
}

// Entry returns the full cell (similarity + shared count) for a pair of
// distinct products and whether it was explicitly present.
func (t *SimilarityTable) Entry(a, b string) (Entry, bool) {
	ia, oka := t.index[a]
	ib, okb := t.index[b]
	if !oka || !okb || a == b {
		return Entry{}, false
	}
	if ib < ia {
		ia, ib = ib, ia
	}
	e, ok := t.entries[[2]int{ia, ib}]
	return e, ok
}

// SetDefault changes the similarity returned for unknown pairs.
func (t *SimilarityTable) SetDefault(sim float64) error {
	if sim < 0 || sim > 1 || math.IsNaN(sim) {
		return fmt.Errorf("vulnsim: default similarity %v out of range [0,1]", sim)
	}
	t.defaultSim = sim
	return nil
}

// Default returns the similarity used for pairs absent from the table.
func (t *SimilarityTable) Default() float64 { return t.defaultSim }

// Merge combines several similarity tables (e.g. the OS, browser and database
// tables) into one.  Products and entries of later tables win on conflict.
func Merge(tables ...*SimilarityTable) *SimilarityTable {
	var products []string
	for _, tab := range tables {
		products = append(products, tab.products...)
	}
	out := NewSimilarityTable(products)
	for _, tab := range tables {
		for p, total := range tab.totals {
			out.totals[p] = total
		}
		for key, e := range tab.entries {
			a := tab.products[key[0]]
			b := tab.products[key[1]]
			// Errors are impossible: both products were added above and
			// entries were validated when first set.
			_ = out.Set(a, b, e.Similarity, e.Shared)
		}
		if tab.defaultSim > out.defaultSim {
			out.defaultSim = tab.defaultSim
		}
	}
	return out
}

// BuildSimilarityTable computes a similarity table for the given products
// from a CVE database using the Jaccard coefficient of Definition 1.
func BuildSimilarityTable(db *Database, products []string, filter VulnFilter) *SimilarityTable {
	t := NewSimilarityTable(products)
	sets := make([]map[string]struct{}, len(t.products))
	for i, p := range t.products {
		sets[i] = db.VulnSet(p, filter)
		t.totals[p] = len(sets[i])
	}
	for i := 0; i < len(t.products); i++ {
		for j := i + 1; j < len(t.products); j++ {
			inter := 0
			small, large := sets[i], sets[j]
			if len(large) < len(small) {
				small, large = large, small
			}
			for k := range small {
				if _, ok := large[k]; ok {
					inter++
				}
			}
			sim := Jaccard(sets[i], sets[j])
			t.entries[[2]int{i, j}] = Entry{Similarity: sim, Shared: inter}
		}
	}
	return t
}

// Render writes the table in the lower-triangular layout of Tables II/III:
// each cell shows "sim (shared)" and the diagonal shows "1.00 (total)".
func (t *SimilarityTable) Render(w io.Writer) error {
	cols := t.products
	if _, err := fmt.Fprintf(w, "%-14s", ""); err != nil {
		return err
	}
	for _, c := range cols {
		if _, err := fmt.Fprintf(w, "%-16s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, row := range cols {
		if _, err := fmt.Fprintf(w, "%-14s", row); err != nil {
			return err
		}
		for j := 0; j <= i; j++ {
			var cell string
			if i == j {
				cell = fmt.Sprintf("1.00 (%d)", t.totals[row])
			} else {
				e, _ := t.Entry(row, cols[j])
				cell = fmt.Sprintf("%.3f (%d)", e.Similarity, e.Shared)
			}
			if _, err := fmt.Fprintf(w, "%-16s", cell); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderString is Render into a string; it never fails.
func (t *SimilarityTable) RenderString() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// tableJSON is the serialised form of a SimilarityTable.
type tableJSON struct {
	Products []string          `json:"products"`
	Totals   map[string]int    `json:"totals"`
	Entries  []entryJSON       `json:"entries"`
	Default  float64           `json:"default"`
	Meta     map[string]string `json:"meta,omitempty"`
}

type entryJSON struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Similarity float64 `json:"similarity"`
	Shared     int     `json:"shared"`
}

// MarshalJSON serialises the table.
func (t *SimilarityTable) MarshalJSON() ([]byte, error) {
	out := tableJSON{
		Products: t.Products(),
		Totals:   make(map[string]int, len(t.totals)),
		Default:  t.defaultSim,
	}
	for p, v := range t.totals {
		out.Totals[p] = v
	}
	keys := make([][2]int, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := t.entries[k]
		out.Entries = append(out.Entries, entryJSON{
			A:          t.products[k[0]],
			B:          t.products[k[1]],
			Similarity: e.Similarity,
			Shared:     e.Shared,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON deserialises the table.
func (t *SimilarityTable) UnmarshalJSON(data []byte) error {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("vulnsim: decode similarity table: %w", err)
	}
	nt := NewSimilarityTable(in.Products)
	if err := nt.SetDefault(in.Default); err != nil {
		return err
	}
	for p, v := range in.Totals {
		if err := nt.SetTotal(p, v); err != nil {
			return err
		}
	}
	for _, e := range in.Entries {
		if err := nt.Set(e.A, e.B, e.Similarity, e.Shared); err != nil {
			return err
		}
	}
	*t = *nt
	return nil
}

// ErrEmptyTable is returned by Validate for a table with no products.
var ErrEmptyTable = errors.New("vulnsim: similarity table has no products")

// Validate checks internal consistency: values in range, shared counts not
// exceeding the totals of either product (when totals are known).
func (t *SimilarityTable) Validate() error {
	if len(t.products) == 0 {
		return ErrEmptyTable
	}
	for key, e := range t.entries {
		a, b := t.products[key[0]], t.products[key[1]]
		if e.Similarity < 0 || e.Similarity > 1 {
			return fmt.Errorf("vulnsim: similarity of (%s,%s) out of range: %v", a, b, e.Similarity)
		}
		if ta, ok := t.totals[a]; ok && e.Shared > ta {
			return fmt.Errorf("vulnsim: shared count of (%s,%s) exceeds |V_%s|", a, b, a)
		}
		if tb, ok := t.totals[b]; ok && e.Shared > tb {
			return fmt.Errorf("vulnsim: shared count of (%s,%s) exceeds |V_%s|", a, b, b)
		}
	}
	return nil
}

package vulnsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// This file implements an offline loader for NVD JSON 1.1 data feeds
// (nvdcve-1.1-*.json), the format the paper's CVE-SEARCH pipeline ultimately
// consumes.  Users who have downloaded real feeds can load them directly and
// compute similarity tables for their own product catalogue; the test suite
// exercises the loader with a small embedded sample.
//
// Only the fields needed for the similarity metric are parsed: the CVE
// identifier, the CVSS v3 (or v2) base score and the affected CPE URIs from
// the vulnerable configuration nodes.

// nvdFeed mirrors the subset of the NVD JSON 1.1 feed schema we consume.
type nvdFeed struct {
	CVEItems []nvdItem `json:"CVE_Items"`
}

type nvdItem struct {
	CVE struct {
		CVEDataMeta struct {
			ID string `json:"ID"`
		} `json:"CVE_data_meta"`
	} `json:"cve"`
	Configurations struct {
		Nodes []nvdNode `json:"nodes"`
	} `json:"configurations"`
	Impact struct {
		BaseMetricV3 struct {
			CVSSV3 struct {
				BaseScore float64 `json:"baseScore"`
			} `json:"cvssV3"`
		} `json:"baseMetricV3"`
		BaseMetricV2 struct {
			CVSSV2 struct {
				BaseScore float64 `json:"baseScore"`
			} `json:"cvssV2"`
		} `json:"baseMetricV2"`
	} `json:"impact"`
}

type nvdNode struct {
	Operator string     `json:"operator"`
	Children []nvdNode  `json:"children"`
	CPEMatch []cpeMatch `json:"cpe_match"`
}

type cpeMatch struct {
	Vulnerable bool   `json:"vulnerable"`
	CPE23URI   string `json:"cpe23Uri"`
	CPE22URI   string `json:"cpe22Uri"`
}

// ProductMapper converts a CPE URI from an NVD feed into the library's
// product identifier.  Returning "" skips the CPE (product not of interest).
type ProductMapper func(cpeURI string) string

// DefaultProductMapper maps a CPE URI to "<product>" or "<product>_<version>"
// (mirroring ParseCPE's ID derivation) and keeps every product.  Supply a
// custom mapper to restrict loading to a known catalogue.
func DefaultProductMapper(uri string) string {
	p, err := ParseCPEAny(uri)
	if err != nil {
		return ""
	}
	return p.ID
}

// CatalogProductMapper keeps only CPEs whose vendor and product name match an
// entry of the catalogue, mapping them to the catalogue's product ID.
// Versions are intentionally ignored so that "windows_7" CPEs with service
// pack suffixes still map to the catalogue's Windows 7 product.
func CatalogProductMapper(catalog *Catalog) ProductMapper {
	type key struct{ vendor, name string }
	index := make(map[key]string)
	for _, p := range catalog.Products() {
		index[key{p.Vendor, p.Name}] = p.ID
	}
	return func(uri string) string {
		p, err := ParseCPEAny(uri)
		if err != nil {
			return ""
		}
		return index[key{p.Vendor, p.Name}]
	}
}

// ParseCPEAny parses either a CPE 2.2 URI (cpe:/a:vendor:product:version) or
// a CPE 2.3 formatted string (cpe:2.3:a:vendor:product:version:...).
func ParseCPEAny(uri string) (Product, error) {
	if strings.HasPrefix(uri, "cpe:2.3:") {
		fields := strings.Split(uri, ":")
		if len(fields) < 6 {
			return Product{}, fmt.Errorf("%w: %q", ErrBadCPE, uri)
		}
		part, vendor, name, version := fields[2], fields[3], fields[4], fields[5]
		if vendor == "" || name == "" || vendor == "*" || name == "*" {
			return Product{}, fmt.Errorf("%w: %q has wildcard vendor or product", ErrBadCPE, uri)
		}
		kind := ServiceGeneric
		if part == "o" {
			kind = ServiceOS
		}
		id := name
		if version != "" && version != "*" && version != "-" {
			id = name + "_" + version
		}
		return Product{ID: id, Vendor: vendor, Name: name, Version: version, Kind: kind}, nil
	}
	return ParseCPE(uri)
}

// LoadNVDJSON parses an NVD JSON 1.1 feed and adds every CVE that affects at
// least one mapped product to the database.  A nil mapper uses
// DefaultProductMapper.  It returns the number of CVE records added.
func LoadNVDJSON(db *Database, r io.Reader, mapper ProductMapper) (int, error) {
	if db == nil {
		return 0, errors.New("vulnsim: nil database")
	}
	if mapper == nil {
		mapper = DefaultProductMapper
	}
	var feed nvdFeed
	dec := json.NewDecoder(r)
	if err := dec.Decode(&feed); err != nil {
		return 0, fmt.Errorf("vulnsim: decode NVD feed: %w", err)
	}
	added := 0
	for _, item := range feed.CVEItems {
		id := item.CVE.CVEDataMeta.ID
		if id == "" {
			continue
		}
		affected := make(map[string]struct{})
		var walk func(nodes []nvdNode)
		walk = func(nodes []nvdNode) {
			for _, n := range nodes {
				for _, m := range n.CPEMatch {
					if !m.Vulnerable {
						continue
					}
					uri := m.CPE23URI
					if uri == "" {
						uri = m.CPE22URI
					}
					if prod := mapper(uri); prod != "" {
						affected[prod] = struct{}{}
					}
				}
				walk(n.Children)
			}
		}
		walk(item.Configurations.Nodes)
		if len(affected) == 0 {
			continue
		}
		cvss := item.Impact.BaseMetricV3.CVSSV3.BaseScore
		if cvss == 0 {
			cvss = item.Impact.BaseMetricV2.CVSSV2.BaseScore
		}
		products := make([]string, 0, len(affected))
		for p := range affected {
			products = append(products, p)
		}
		c, err := NewCVE(id, cvss, products...)
		if err != nil {
			// Skip malformed identifiers rather than aborting a whole feed.
			continue
		}
		if err := db.Add(c); err != nil {
			// Duplicate identifiers across feed files are common; keep the
			// first occurrence.
			continue
		}
		added++
	}
	return added, nil
}

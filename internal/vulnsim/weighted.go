package vulnsim

import (
	"fmt"
	"math"
)

// WeightFunc assigns a weight to a vulnerability when computing weighted
// similarity.  Returning 0 excludes the vulnerability entirely.
type WeightFunc func(CVE) float64

// CVSSWeight weights every vulnerability by its CVSS base score normalised to
// [0,1], so that a shared critical vulnerability contributes more to the
// similarity than a shared low-severity one.  The paper lists better
// similarity estimation as future work (Section IX); severity weighting is
// the most common refinement.
func CVSSWeight(c CVE) float64 {
	if c.CVSS <= 0 {
		return 0.1 // unknown severity still counts a little
	}
	return c.CVSS / 10
}

// RecencyWeight discounts old vulnerabilities with an exponential half-life
// (in years) relative to the reference year: recent shared vulnerabilities
// are better predictors of future shared zero-days than decades-old ones.
func RecencyWeight(referenceYear int, halfLifeYears float64) WeightFunc {
	if halfLifeYears <= 0 {
		halfLifeYears = 5
	}
	return func(c CVE) float64 {
		age := float64(referenceYear - c.Year)
		if age < 0 {
			age = 0
		}
		return math.Pow(0.5, age/halfLifeYears)
	}
}

// CombineWeights multiplies several weight functions.
func CombineWeights(fns ...WeightFunc) WeightFunc {
	return func(c CVE) float64 {
		w := 1.0
		for _, fn := range fns {
			w *= fn(c)
		}
		return w
	}
}

// WeightedJaccard computes the weighted Jaccard similarity of two products'
// vulnerability sets under a weight function:
//
//	sim_w(a, b) = Σ_{v ∈ Va∩Vb} w(v) / Σ_{v ∈ Va∪Vb} w(v)
//
// With a constant weight of 1 this reduces to the plain Jaccard coefficient
// of Definition 1.
func WeightedJaccard(db *Database, a, b string, filter VulnFilter, weight WeightFunc) (float64, error) {
	if db == nil {
		return 0, fmt.Errorf("vulnsim: nil database")
	}
	if weight == nil {
		weight = func(CVE) float64 { return 1 }
	}
	va := db.VulnSet(a, filter)
	vb := db.VulnSet(b, filter)
	inter, union := 0.0, 0.0
	seen := make(map[string]struct{}, len(va)+len(vb))
	add := func(id string, inBoth bool) {
		if _, ok := seen[id]; ok {
			return
		}
		seen[id] = struct{}{}
		c, ok := db.Get(id)
		if !ok {
			return
		}
		w := weight(c)
		if w < 0 {
			w = 0
		}
		union += w
		if inBoth {
			inter += w
		}
	}
	for id := range va {
		_, both := vb[id]
		add(id, both)
	}
	for id := range vb {
		_, both := va[id]
		add(id, both)
	}
	if union == 0 {
		return 0, nil
	}
	return inter / union, nil
}

// BuildWeightedSimilarityTable is BuildSimilarityTable with a per-CVE weight
// function.  The stored shared counts remain the unweighted intersection
// sizes (for reporting); only the similarity values are weighted.
func BuildWeightedSimilarityTable(db *Database, products []string, filter VulnFilter, weight WeightFunc) (*SimilarityTable, error) {
	if db == nil {
		return nil, fmt.Errorf("vulnsim: nil database")
	}
	t := NewSimilarityTable(products)
	list := t.Products()
	for _, p := range list {
		if err := t.SetTotal(p, db.VulnCount(p, filter)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < len(list); i++ {
		for j := i + 1; j < len(list); j++ {
			sim, err := WeightedJaccard(db, list[i], list[j], filter, weight)
			if err != nil {
				return nil, err
			}
			shared := len(db.SharedVulns(list[i], list[j], filter))
			if err := t.Set(list[i], list[j], sim, shared); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

package vulnsim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestDenseMatchesSim is the equivalence test between the precomputed dense
// matrix and the on-the-fly sparse lookup: every covered pair — including
// self-pairs, unknown products and pairs falling back to the table default —
// must agree bit-for-bit with Sim.
func TestDenseMatchesSim(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	known := make([]string, 12)
	for i := range known {
		known[i] = fmt.Sprintf("prod%d", i)
	}
	tab := NewSimilarityTable(known)
	if err := tab.SetDefault(0.07); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(known); i++ {
		for j := i + 1; j < len(known); j++ {
			if rng.Float64() < 0.6 {
				if err := tab.Set(known[i], known[j], rng.Float64(), rng.Intn(5)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Cover unknown products and a duplicate in the requested list.
	products := append(append([]string(nil), known...), "ghostA", "ghostB", known[3])
	d := NewDense(tab, products)
	if d.NumProducts() != len(known)+2 {
		t.Fatalf("NumProducts = %d, want %d (duplicates collapsed)", d.NumProducts(), len(known)+2)
	}
	for _, a := range d.Products() {
		ia := d.Index(a)
		row := d.Row(ia)
		for _, b := range d.Products() {
			ib := d.Index(b)
			want := tab.Sim(a, b)
			if got := d.Sim(ia, ib); got != want {
				t.Errorf("Dense.Sim(%s,%s) = %v, Sim = %v", a, b, got, want)
			}
			if row[ib] != want {
				t.Errorf("Dense.Row(%s)[%s] = %v, Sim = %v", a, b, row[ib], want)
			}
		}
	}
	if d.Index("never-seen") != -1 {
		t.Error("Index of uncovered product should be -1")
	}
}

func TestDenseSnapshotSemantics(t *testing.T) {
	tab := NewSimilarityTable([]string{"a", "b"})
	if err := tab.Set("a", "b", 0.25, 1); err != nil {
		t.Fatal(err)
	}
	d := NewDense(tab, []string{"a", "b"})
	if err := tab.Set("a", "b", 0.9, 2); err != nil {
		t.Fatal(err)
	}
	if got := d.Sim(d.Index("a"), d.Index("b")); got != 0.25 {
		t.Errorf("Dense should snapshot the table at construction, got %v", got)
	}
}

func BenchmarkSimSparse(b *testing.B) {
	products := make([]string, 16)
	for i := range products {
		products[i] = fmt.Sprintf("prod%d", i)
	}
	tab := NewSimilarityTable(products)
	for i := 0; i < len(products); i++ {
		for j := i + 1; j < len(products); j++ {
			_ = tab.Set(products[i], products[j], 0.3, 1)
		}
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tab.Sim(products[i%16], products[(i+5)%16])
	}
	_ = sink
}

func BenchmarkSimDense(b *testing.B) {
	products := make([]string, 16)
	for i := range products {
		products[i] = fmt.Sprintf("prod%d", i)
	}
	tab := NewSimilarityTable(products)
	for i := 0; i < len(products); i++ {
		for j := i + 1; j < len(products); j++ {
			_ = tab.Set(products[i], products[j], 0.3, 1)
		}
	}
	d := NewDense(tab, products)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += d.Sim(i%16, (i+5)%16)
	}
	_ = sink
}

package core

import (
	"context"
	"reflect"
	"testing"

	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
)

func TestPartitionNetwork(t *testing.T) {
	cfg := netgen.RandomConfig{Hosts: 120, Degree: 6, Services: 2, Seed: 5}
	net, err := netgen.Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := PartitionNetwork(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 2 || len(blocks) > 4 {
		t.Fatalf("got %d blocks, want 2..4", len(blocks))
	}
	seen := make(map[netmodel.HostID]int)
	for _, block := range blocks {
		if len(block) == 0 {
			t.Error("empty partition block")
		}
		for _, h := range block {
			seen[h]++
		}
	}
	if len(seen) != net.NumHosts() {
		t.Errorf("partition covers %d hosts, want %d", len(seen), net.NumHosts())
	}
	for h, c := range seen {
		if c != 1 {
			t.Errorf("host %s appears in %d blocks", h, c)
		}
	}
	// Rough balance: no block more than 2x the ideal size.
	ideal := net.NumHosts() / len(blocks)
	for i, block := range blocks {
		if len(block) > 2*ideal+1 {
			t.Errorf("block %d has %d hosts, ideal %d", i, len(block), ideal)
		}
	}
}

// TestPartitionNetworkDeterministic: partitioning must be order-stable — two
// runs over the same network (and over an independently regenerated copy)
// must produce identical block membership, including the leftover-attachment
// phase that kicks in when the seed-growth produces more fragments than
// blocks.
func TestPartitionNetworkDeterministic(t *testing.T) {
	cfgs := []netgen.RandomConfig{
		{Hosts: 120, Degree: 6, Services: 2, Seed: 5},
		// Low degree maximises disconnected fragments -> leftovers.
		{Hosts: 90, Degree: 2, Services: 2, Seed: 11},
	}
	for _, cfg := range cfgs {
		for _, parts := range []int{3, 4, 7} {
			net, err := netgen.Random(cfg)
			if err != nil {
				t.Fatal(err)
			}
			first, err := PartitionNetwork(net, parts)
			if err != nil {
				t.Fatal(err)
			}
			again, err := PartitionNetwork(net, parts)
			if err != nil {
				t.Fatal(err)
			}
			regen, err := netgen.Random(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := PartitionNetwork(regen, parts)
			if err != nil {
				t.Fatal(err)
			}
			for name, other := range map[string][][]netmodel.HostID{"same-network rerun": again, "regenerated network": fresh} {
				if !reflect.DeepEqual(first, other) {
					t.Errorf("hosts=%d parts=%d: %s produced different blocks", cfg.Hosts, parts, name)
				}
			}
		}
	}
}

func TestPartitionNetworkEdgeCases(t *testing.T) {
	if _, err := PartitionNetwork(nil, 3); err == nil {
		t.Error("nil network should be rejected")
	}
	net, _ := triangleNetwork(t)
	blocks, err := PartitionNetwork(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || len(blocks[0]) != 3 {
		t.Errorf("parts=1 should yield a single block of all hosts, got %v", blocks)
	}
	blocks, err = PartitionNetwork(net, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Errorf("more parts than hosts should collapse to one block, got %d", len(blocks))
	}
}

func TestOptimizeParallelMatchesSequentialQuality(t *testing.T) {
	cfg := netgen.RandomConfig{Hosts: 150, Degree: 6, Services: 3, ProductsPerService: 4, Seed: 7}
	net, err := netgen.Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := netgen.SyntheticSimilarity(cfg, 0.6)
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	par, err := opt.OptimizeParallel(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Assignment.ValidateFor(net); err != nil {
		t.Fatalf("parallel assignment invalid: %v", err)
	}
	if par.Blocks < 2 {
		t.Errorf("expected multiple blocks, got %d", par.Blocks)
	}
	if par.CutLinks <= 0 {
		t.Error("expected some cut links on a connected network")
	}
	// The partitioned optimum should stay within 15% of the sequential one
	// and far below the mono-culture energy.
	if par.Energy > seq.Energy*1.15 {
		t.Errorf("parallel energy %v too far above sequential %v", par.Energy, seq.Energy)
	}
	mono, err := opt.Energy(mustMono(t, net))
	if err != nil {
		t.Fatal(err)
	}
	if par.Energy >= mono {
		t.Errorf("parallel energy %v should beat mono %v", par.Energy, mono)
	}
}

// TestOptimizeParallelDeterministicAcrossWorkerCounts: for a fixed seed and
// partition count, the pipeline must return the same energy regardless of
// how many goroutines the bounded pool uses, and every registered solver
// must be usable through it.
func TestOptimizeParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := netgen.RandomConfig{Hosts: 100, Degree: 5, Services: 2, ProductsPerService: 3, Seed: 13}
	net, err := netgen.Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := netgen.SyntheticSimilarity(cfg, 0.6)
	for _, solver := range []Solver{SolverTRWS, SolverBP, SolverICM, SolverAnneal} {
		var reference *ParallelResult
		for _, workers := range []int{1, 2, 4} {
			opt, err := NewOptimizer(net, sim, Options{Solver: solver, MaxIterations: 15, Seed: 3, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.OptimizeParallel(context.Background(), 4)
			if err != nil {
				t.Fatalf("solver %s workers %d: %v", solver, workers, err)
			}
			if err := res.Assignment.ValidateFor(net); err != nil {
				t.Fatalf("solver %s workers %d: invalid assignment: %v", solver, workers, err)
			}
			if reference == nil {
				reference = &res
				continue
			}
			if res.Energy != reference.Energy {
				t.Errorf("solver %s: energy differs across worker counts: %v (workers=%d) vs %v",
					solver, res.Energy, workers, reference.Energy)
			}
			if res.Blocks != reference.Blocks || res.CutLinks != reference.CutLinks {
				t.Errorf("solver %s: partition shape differs across worker counts", solver)
			}
		}
	}
}

func mustMono(t *testing.T, net *netmodel.Network) *netmodel.Assignment {
	t.Helper()
	a := netmodel.NewAssignment()
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		for _, s := range h.Services {
			a.Set(hid, s, h.Choices[s][0])
		}
	}
	return a
}

func TestOptimizeParallelRespectsConstraints(t *testing.T) {
	net, sim := caseNetwork(t)
	cs := netmodel.NewConstraintSet()
	cs.Fix("x", "os", "win7")
	cs.Add(netmodel.Constraint{
		Host:     netmodel.AllHosts,
		ServiceM: "os",
		ServiceN: "wb",
		ProductJ: "ubt1404",
		ProductK: "ie10",
		Mode:     netmodel.Forbid,
	})
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.SetConstraints(cs); err != nil {
		t.Fatal(err)
	}
	res, err := opt.OptimizeParallel(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Product("x", "os") != "win7" {
		t.Error("pinned product lost in parallel optimisation")
	}
	if len(res.ConstraintViolations) != 0 {
		t.Errorf("violations: %v", res.ConstraintViolations)
	}
	// parts <= 1 falls back to the sequential path.
	single, err := opt.OptimizeParallel(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.Blocks != 1 {
		t.Errorf("parts=1 should report a single block, got %d", single.Blocks)
	}
}

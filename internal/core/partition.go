package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"netdiversity/internal/icm"
	"netdiversity/internal/netmodel"
)

// The paper's optimiser runs "in a multi-level fashion" with parallel
// computation (Section V-C / VIII).  OptimizeParallel reproduces that idea in
// pure Go: the network is partitioned into connected blocks, each block is
// optimised independently and concurrently, and the merged labeling is then
// refined globally with a local-search pass that accounts for the cut edges.
// The result is a slightly less tight optimum than a full sequential TRW-S
// run, obtained in a fraction of the wall-clock time on large networks.

// PartitionNetwork splits the hosts of a network into at most `parts`
// connected, roughly balanced blocks using BFS growth from spread-out seeds.
// Every host appears in exactly one block.
func PartitionNetwork(net *netmodel.Network, parts int) ([][]netmodel.HostID, error) {
	if net == nil {
		return nil, errors.New("core: nil network")
	}
	hosts := net.Hosts()
	if parts <= 1 || len(hosts) <= parts {
		return [][]netmodel.HostID{hosts}, nil
	}
	targetSize := (len(hosts) + parts - 1) / parts

	assigned := make(map[netmodel.HostID]int, len(hosts))
	var blocks [][]netmodel.HostID

	for _, start := range hosts {
		if _, done := assigned[start]; done {
			continue
		}
		if len(blocks) == parts {
			// All blocks created: attach leftovers to the smallest block.
			smallest := 0
			for i := range blocks {
				if len(blocks[i]) < len(blocks[smallest]) {
					smallest = i
				}
			}
			blocks[smallest] = append(blocks[smallest], start)
			assigned[start] = smallest
			continue
		}
		// Grow a new block by BFS until it reaches the target size.
		blockIdx := len(blocks)
		var block []netmodel.HostID
		queue := []netmodel.HostID{start}
		assigned[start] = blockIdx
		for len(queue) > 0 && len(block) < targetSize {
			cur := queue[0]
			queue = queue[1:]
			block = append(block, cur)
			for _, nb := range net.Neighbors(cur) {
				if _, done := assigned[nb]; done {
					continue
				}
				if len(block)+len(queue) >= targetSize {
					break
				}
				assigned[nb] = blockIdx
				queue = append(queue, nb)
			}
		}
		// Any queued-but-unvisited hosts still belong to this block.
		block = append(block, queue...)
		blocks = append(blocks, block)
	}
	for i := range blocks {
		sort.Slice(blocks[i], func(a, b int) bool { return blocks[i][a] < blocks[i][b] })
	}
	return blocks, nil
}

// subNetwork builds the network induced by the given hosts (intra-block links
// only) and the restriction of the constraint set to those hosts.
func subNetwork(net *netmodel.Network, block []netmodel.HostID, cs *netmodel.ConstraintSet) (*netmodel.Network, *netmodel.ConstraintSet, error) {
	inBlock := make(map[netmodel.HostID]bool, len(block))
	sub := netmodel.New()
	for _, hid := range block {
		h, ok := net.Host(hid)
		if !ok {
			return nil, nil, fmt.Errorf("core: partition references unknown host %q", hid)
		}
		if err := sub.AddHost(h); err != nil {
			return nil, nil, err
		}
		inBlock[hid] = true
	}
	for _, l := range net.Links() {
		if inBlock[l.A] && inBlock[l.B] {
			if err := sub.AddLink(l.A, l.B); err != nil {
				return nil, nil, err
			}
		}
	}
	if cs == nil {
		return sub, nil, nil
	}
	subCS := netmodel.NewConstraintSet()
	for _, hid := range cs.FixedHosts() {
		if !inBlock[hid] {
			continue
		}
		h, _ := net.Host(hid)
		for _, s := range h.Services {
			if p, ok := cs.Fixed(hid, s); ok {
				subCS.Fix(hid, s, p)
			}
		}
	}
	for _, c := range cs.Constraints() {
		if c.Global() || inBlock[c.Host] {
			subCS.Add(c)
		}
	}
	return sub, subCS, nil
}

// ParallelResult extends Result with partition information.
type ParallelResult struct {
	Result
	// Blocks is the number of partition blocks optimised concurrently.
	Blocks int
	// CutLinks is the number of network links crossing block boundaries
	// (handled by the global refinement pass).
	CutLinks int
}

// OptimizeParallel partitions the network into `parts` blocks, optimises the
// blocks concurrently and refines the merged assignment globally.  With
// parts <= 1 it falls back to Optimize.
func (o *Optimizer) OptimizeParallel(ctx context.Context, parts int) (ParallelResult, error) {
	start := time.Now()
	if parts <= 1 {
		res, err := o.Optimize(ctx)
		if err != nil {
			return ParallelResult{}, err
		}
		return ParallelResult{Result: res, Blocks: 1}, nil
	}
	blocks, err := PartitionNetwork(o.net, parts)
	if err != nil {
		return ParallelResult{}, err
	}

	blockIndex := make(map[netmodel.HostID]int, o.net.NumHosts())
	for bi, block := range blocks {
		for _, hid := range block {
			blockIndex[hid] = bi
		}
	}
	cut := 0
	for _, l := range o.net.Links() {
		if blockIndex[l.A] != blockIndex[l.B] {
			cut++
		}
	}

	merged := netmodel.NewAssignment()
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, len(blocks))
	for bi, block := range blocks {
		wg.Add(1)
		go func(bi int, block []netmodel.HostID) {
			defer wg.Done()
			sub, subCS, err := subNetwork(o.net, block, o.cs)
			if err != nil {
				errs[bi] = err
				return
			}
			subOpt, err := NewOptimizer(sub, o.sim, o.opts)
			if err != nil {
				errs[bi] = err
				return
			}
			if o.costModel != nil {
				if err := subOpt.SetCostModel(*o.costModel, o.costWeight); err != nil {
					errs[bi] = err
					return
				}
			}
			if subCS != nil && !subCS.Empty() {
				if err := subOpt.SetConstraints(subCS); err != nil {
					errs[bi] = err
					return
				}
			}
			res, err := subOpt.Optimize(ctx)
			if err != nil {
				errs[bi] = err
				return
			}
			mu.Lock()
			defer mu.Unlock()
			for _, hid := range block {
				for s, p := range res.Assignment.HostAssignment(hid) {
					merged.Set(hid, s, p)
				}
			}
		}(bi, block)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ParallelResult{}, err
		}
	}

	// Global refinement on the full problem, starting from the merged
	// block-optimal labeling; this repairs the cut edges.
	prob, err := o.buildProblem()
	if err != nil {
		return ParallelResult{}, err
	}
	labels, err := prob.encode(merged)
	if err != nil {
		return ParallelResult{}, err
	}
	polished, err := icm.Polish(prob.graph, labels, 20)
	if err != nil {
		return ParallelResult{}, err
	}
	assignment, err := prob.decode(polished.Labels)
	if err != nil {
		return ParallelResult{}, err
	}

	out := ParallelResult{
		Result: Result{
			Assignment: assignment,
			Energy:     polished.Energy,
			LowerBound: prob.graph.TrivialLowerBound(),
			Iterations: polished.Iterations,
			Converged:  polished.Converged,
			Runtime:    time.Since(start),
			Nodes:      prob.graph.NumNodes(),
			Edges:      prob.graph.NumEdges(),
		},
		Blocks:   len(blocks),
		CutLinks: cut,
	}
	if o.cs != nil {
		out.ConstraintViolations = o.cs.Violations(assignment, o.net)
	}
	return out, nil
}

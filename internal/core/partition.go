package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"netdiversity/internal/icm"
	"netdiversity/internal/netmodel"
)

// The paper's optimiser runs "in a multi-level fashion" with parallel
// computation (Section V-C / VIII).  OptimizeParallel reproduces that idea in
// pure Go: the network is partitioned into connected blocks, each block is
// optimised independently by a bounded worker pool (any registered solver),
// and the merged labeling is then refined globally with a local-search pass
// that accounts for the cut edges.  The result is a slightly less tight
// optimum than a full sequential run, obtained in a fraction of the
// wall-clock time on large networks.  For a fixed seed, worker count and
// partition count the result is deterministic: blocks are disjoint, each
// block is solved by a deterministic solver, and the merge and refinement
// steps are order-independent.

// PartitionNetwork splits the hosts of a network into at most `parts`
// connected, roughly balanced blocks using BFS growth from spread-out seeds.
// Every host appears in exactly one block.  The construction is order-stable:
// it depends only on the network's host insertion order and sorted neighbour
// lists, never on map iteration, so repeated calls return identical blocks.
func PartitionNetwork(net *netmodel.Network, parts int) ([][]netmodel.HostID, error) {
	if net == nil {
		return nil, errors.New("core: nil network")
	}
	hosts := net.Hosts()
	if parts <= 1 || len(hosts) <= parts {
		return [][]netmodel.HostID{hosts}, nil
	}
	targetSize := (len(hosts) + parts - 1) / parts

	assigned := make(map[netmodel.HostID]int, len(hosts))
	var blocks [][]netmodel.HostID
	var leftovers []netmodel.HostID

	for _, start := range hosts {
		if _, done := assigned[start]; done {
			continue
		}
		if len(blocks) == parts {
			// All blocks created: attach the remaining hosts afterwards so
			// the attachment rule sees the final block layout.
			leftovers = append(leftovers, start)
			continue
		}
		// Grow a new block by BFS until it reaches the target size.
		blockIdx := len(blocks)
		var block []netmodel.HostID
		queue := []netmodel.HostID{start}
		assigned[start] = blockIdx
		for len(queue) > 0 && len(block) < targetSize {
			cur := queue[0]
			queue = queue[1:]
			block = append(block, cur)
			for _, nb := range net.Neighbors(cur) {
				if _, done := assigned[nb]; done {
					continue
				}
				if len(block)+len(queue) >= targetSize {
					break
				}
				assigned[nb] = blockIdx
				queue = append(queue, nb)
			}
		}
		// Any queued-but-unvisited hosts still belong to this block.
		block = append(block, queue...)
		blocks = append(blocks, block)
	}
	// Attach leftovers in host order: prefer the block of the first (sorted)
	// already-assigned neighbour to keep blocks connected; otherwise fall
	// back to the currently smallest block (ties broken by lowest index).
	for _, hid := range leftovers {
		target := -1
		for _, nb := range net.Neighbors(hid) {
			if bi, ok := assigned[nb]; ok {
				target = bi
				break
			}
		}
		if target < 0 {
			target = 0
			for bi := 1; bi < len(blocks); bi++ {
				if len(blocks[bi]) < len(blocks[target]) {
					target = bi
				}
			}
		}
		blocks[target] = append(blocks[target], hid)
		assigned[hid] = target
	}
	for i := range blocks {
		sort.Slice(blocks[i], func(a, b int) bool { return blocks[i][a] < blocks[i][b] })
	}
	return blocks, nil
}

// subNetwork builds the network induced by the given hosts (intra-block links
// only) and the restriction of the constraint set to those hosts.
func subNetwork(net *netmodel.Network, block []netmodel.HostID, cs *netmodel.ConstraintSet) (*netmodel.Network, *netmodel.ConstraintSet, error) {
	inBlock := make(map[netmodel.HostID]bool, len(block))
	sub := netmodel.New()
	for _, hid := range block {
		h, ok := net.Host(hid)
		if !ok {
			return nil, nil, fmt.Errorf("core: partition references unknown host %q", hid)
		}
		if err := sub.AddHost(h); err != nil {
			return nil, nil, err
		}
		inBlock[hid] = true
	}
	for _, l := range net.Links() {
		if inBlock[l.A] && inBlock[l.B] {
			if err := sub.AddLink(l.A, l.B); err != nil {
				return nil, nil, err
			}
		}
	}
	if cs == nil {
		return sub, nil, nil
	}
	subCS := netmodel.NewConstraintSet()
	for _, hid := range cs.FixedHosts() {
		if !inBlock[hid] {
			continue
		}
		h, _ := net.Host(hid)
		for _, s := range h.Services {
			if p, ok := cs.Fixed(hid, s); ok {
				subCS.Fix(hid, s, p)
			}
		}
	}
	for _, c := range cs.Constraints() {
		if c.Global() || inBlock[c.Host] {
			subCS.Add(c)
		}
	}
	return sub, subCS, nil
}

// ParallelResult extends Result with partition information.
type ParallelResult struct {
	Result
	// Blocks is the number of partition blocks optimised concurrently.
	Blocks int
	// CutLinks is the number of network links crossing block boundaries
	// (handled by the global refinement pass).
	CutLinks int
	// Workers is the size of the worker pool that solved the blocks.
	Workers int
}

// solveBlock optimises one partition block and returns its assignment.
func (o *Optimizer) solveBlock(ctx context.Context, block []netmodel.HostID) (*netmodel.Assignment, error) {
	sub, subCS, err := subNetwork(o.net, block, o.cs)
	if err != nil {
		return nil, err
	}
	// The pool already provides the parallelism; intra-solver fan-out inside
	// every block would oversubscribe the machine quadratically.
	subOpts := o.opts
	subOpts.Workers = 1
	subOpt, err := NewOptimizer(sub, o.sim, subOpts)
	if err != nil {
		return nil, err
	}
	if o.costModel != nil {
		if err := subOpt.SetCostModel(*o.costModel, o.costWeight); err != nil {
			return nil, err
		}
	}
	if subCS != nil && !subCS.Empty() {
		if err := subOpt.SetConstraints(subCS); err != nil {
			return nil, err
		}
	}
	res, err := subOpt.Optimize(ctx)
	if err != nil {
		return nil, err
	}
	return res.Assignment, nil
}

// OptimizeParallel partitions the network into `parts` blocks, optimises the
// blocks concurrently with a worker pool bounded by Options.Workers (at
// least one goroutine; capped at the block count) and refines the merged
// assignment globally.  Any registered solver may be selected through
// Options.Solver — the partition-solve-merge-refine pipeline is solver
// agnostic.  With parts <= 1 it falls back to Optimize.
func (o *Optimizer) OptimizeParallel(ctx context.Context, parts int) (ParallelResult, error) {
	start := time.Now()
	if parts <= 1 {
		res, err := o.Optimize(ctx)
		if err != nil {
			return ParallelResult{}, err
		}
		return ParallelResult{Result: res, Blocks: 1, Workers: 1}, nil
	}
	blocks, err := PartitionNetwork(o.net, parts)
	if err != nil {
		return ParallelResult{}, err
	}

	blockIndex := make(map[netmodel.HostID]int, o.net.NumHosts())
	for bi, block := range blocks {
		for _, hid := range block {
			blockIndex[hid] = bi
		}
	}
	cut := 0
	for _, l := range o.net.Links() {
		if blockIndex[l.A] != blockIndex[l.B] {
			cut++
		}
	}

	workers := o.opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	// Bounded pool: block indices are fed through a channel; results land in
	// a per-block slot so the merge below is deterministic regardless of
	// scheduling order.
	results := make([]*netmodel.Assignment, len(blocks))
	errs := make([]error, len(blocks))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range work {
				// A cancelled context stops the remaining blocks immediately
				// instead of letting each block solver discover it on its
				// own; the optimiser's previous solution stays intact.
				if err := ctx.Err(); err != nil {
					errs[bi] = err
					continue
				}
				results[bi], errs[bi] = o.solveBlock(ctx, blocks[bi])
			}
		}()
	}
feed:
	for bi := range blocks {
		select {
		case work <- bi:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return ParallelResult{}, err
	}
	for _, err := range errs {
		if err != nil {
			return ParallelResult{}, err
		}
	}

	merged := netmodel.NewAssignment()
	for bi, block := range blocks {
		for _, hid := range block {
			for s, p := range results[bi].HostAssignment(hid) {
				merged.Set(hid, s, p)
			}
		}
	}

	// Global refinement on the full problem, starting from the merged
	// block-optimal labeling; this repairs the cut edges.
	prob, err := o.ensureProblem()
	if err != nil {
		return ParallelResult{}, err
	}
	labels, err := prob.encode(merged)
	if err != nil {
		return ParallelResult{}, err
	}
	polished, err := icm.Polish(prob.graph, labels, 20)
	if err != nil {
		return ParallelResult{}, err
	}
	assignment, err := prob.decode(polished.Labels)
	if err != nil {
		return ParallelResult{}, err
	}

	out := ParallelResult{
		Result: Result{
			Assignment: assignment,
			Energy:     polished.Energy,
			LowerBound: prob.graph.TrivialLowerBound(),
			Iterations: polished.Iterations,
			Converged:  polished.Converged,
			Runtime:    time.Since(start),
			Nodes:      prob.graph.NumNodes(),
			Edges:      prob.graph.NumEdges(),
		},
		Blocks:   len(blocks),
		CutLinks: cut,
		Workers:  workers,
	}
	if o.cs != nil {
		out.ConstraintViolations = o.cs.Violations(assignment, o.net)
	}
	// Like Optimize, a parallel solve absorbs every pending delta and seeds
	// the next Reoptimize.
	o.lastAssignment = assignment
	o.lastEnergy = polished.Energy
	prob.clearDirty()
	o.rebuilt = false
	o.pendingDeltas = false
	return out, nil
}

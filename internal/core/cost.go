package core

import (
	"errors"
	"fmt"

	"netdiversity/internal/netmodel"
)

// Deployment cost support (the cost-constrained diversification of Borbor et
// al., which the paper cites as related work [17]): every product may carry a
// deployment/licensing cost, and the optimiser can trade diversity against
// total cost through a cost weight λ added to the unary term.  Sweeping λ
// produces the diversity-versus-cost Pareto front reported by the "cost"
// experiment.

// CostModel maps products to a deployment cost (licence, migration effort,
// re-training, …) in arbitrary but consistent units.
type CostModel struct {
	// Costs is the per-product deployment cost.  Products absent from the
	// map cost DefaultCost.
	Costs map[netmodel.ProductID]float64
	// DefaultCost is used for products without an explicit entry.
	DefaultCost float64
}

// Cost returns the deployment cost of a product.
func (m CostModel) Cost(p netmodel.ProductID) float64 {
	if m.Costs != nil {
		if c, ok := m.Costs[p]; ok {
			return c
		}
	}
	return m.DefaultCost
}

// Validate rejects negative costs.
func (m CostModel) Validate() error {
	if m.DefaultCost < 0 {
		return errors.New("core: negative default cost")
	}
	for p, c := range m.Costs {
		if c < 0 {
			return fmt.Errorf("core: negative cost for product %q", p)
		}
	}
	return nil
}

// TotalCost sums the deployment cost of a complete assignment.
func (m CostModel) TotalCost(net *netmodel.Network, a *netmodel.Assignment) (float64, error) {
	if net == nil || a == nil {
		return 0, errors.New("core: network and assignment must not be nil")
	}
	if err := a.ValidateFor(net); err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	total := 0.0
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		for _, s := range h.Services {
			total += m.Cost(a.Product(hid, s))
		}
	}
	return total, nil
}

// SetCostModel installs a deployment-cost model and the weight λ with which
// the per-product cost is added to the unary term of Eq. 2.  A weight of 0
// disables the cost term; larger weights push the optimiser toward cheaper
// products at the expense of diversity.
func (o *Optimizer) SetCostModel(model CostModel, weight float64) error {
	if err := model.Validate(); err != nil {
		return err
	}
	if weight < 0 {
		return errors.New("core: negative cost weight")
	}
	o.costModel = &model
	o.costWeight = weight
	// Cost changes rescale every unary row: rebuild rather than patch.
	o.invalidateProblem()
	return nil
}

// applyCostModel adds weight·cost(product) to the unary cost of every label.
// It is invoked by buildProblem through the optimiser.
func applyCostModel(p *problem, model *CostModel, weight float64) error {
	if model == nil || weight == 0 {
		return nil
	}
	for i := range p.vars {
		for l, cand := range p.candidates[i] {
			if err := p.graph.AddUnary(i, l, weight*model.Cost(cand)); err != nil {
				return fmt.Errorf("core: %w", err)
			}
		}
	}
	return nil
}

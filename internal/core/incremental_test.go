package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

func churnFixture(t *testing.T, hosts int, seed int64) (*netmodel.Network, *vulnsim.SimilarityTable) {
	t.Helper()
	cfg := netgen.RandomConfig{Hosts: hosts, Degree: 6, Services: 3, ProductsPerService: 4, Seed: seed}
	net, err := netgen.Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net, netgen.SyntheticSimilarity(cfg, 0.6)
}

// randomDelta builds a deterministic mixed delta against the network: a few
// removed hosts, a joining host wired to random survivors, link flips and a
// preference-only service update.
func randomDelta(t *testing.T, net *netmodel.Network, rng *rand.Rand) netmodel.Delta {
	t.Helper()
	joiner := netmodel.HostID(fmt.Sprintf("joiner%d", rng.Int63()))
	hosts := net.Hosts()
	var d netmodel.Delta
	// Remove two random hosts.
	for _, i := range []int{rng.Intn(len(hosts)), rng.Intn(len(hosts))} {
		id := hosts[i]
		if _, ok := net.Host(id); !ok {
			continue
		}
		d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpRemoveHost, ID: id})
	}
	// Join a new host with the synthetic catalogue and two links.
	services := []netmodel.ServiceID{netgen.ServiceName(0), netgen.ServiceName(1)}
	choices := map[netmodel.ServiceID][]netmodel.ProductID{}
	for si, s := range services {
		for p := 0; p < 4; p++ {
			choices[s] = append(choices[s], netgen.ProductName(si, p))
		}
	}
	spec := netmodel.HostSpec{ID: joiner, Services: services, Choices: choices}
	d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpAddHost, Host: &spec})
	removed := map[netmodel.HostID]bool{}
	for _, op := range d.Ops {
		if op.Op == netmodel.OpRemoveHost {
			removed[op.ID] = true
		}
	}
	links := 0
	for links < 2 {
		nb := hosts[rng.Intn(len(hosts))]
		if removed[nb] || nb == joiner {
			continue
		}
		d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpAddEdge, A: joiner, B: nb})
		links++
	}
	// Flip a random existing link and bump a host's preference.
	if ls := net.Links(); len(ls) > 0 {
		l := ls[rng.Intn(len(ls))]
		if !removed[l.A] && !removed[l.B] {
			d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpRemoveEdge, A: l.A, B: l.B})
		}
	}
	for _, id := range hosts {
		if removed[id] {
			continue
		}
		h, _ := net.Host(id)
		pref := map[netmodel.ServiceID]map[netmodel.ProductID]float64{
			h.Services[0]: {h.Choices[h.Services[0]][0]: 0.9},
		}
		d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpUpdateHostServices, ID: id,
			Services: append([]netmodel.ServiceID(nil), h.Services...),
			Choices:  h.Choices, Preference: pref})
		break
	}
	return d
}

// TestApplyDeltaEnergyParity is the core correctness property of the
// incremental engine: after any delta, the patched MRF must assign every
// labeling the same energy as an MRF freshly built from the mutated network.
func TestApplyDeltaEnergyParity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		net, sim := churnFixture(t, 40, seed)
		opt, err := NewOptimizer(net, sim, Options{MaxIterations: 10})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.Optimize(context.Background()); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 97))
		for step := 0; step < 4; step++ {
			d := randomDelta(t, opt.net, rng)
			if err := opt.ApplyDelta(d); err != nil {
				t.Fatalf("seed %d step %d: ApplyDelta: %v", seed, step, err)
			}
			// Fresh build of the mutated network for comparison.
			fresh, err := NewOptimizer(opt.net, sim, Options{MaxIterations: 10})
			if err != nil {
				t.Fatal(err)
			}
			freshProb, err := fresh.ensureProblem()
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Reoptimize(context.Background())
			if err != nil {
				t.Fatalf("seed %d step %d: Reoptimize: %v", seed, step, err)
			}
			if err := res.Assignment.ValidateFor(opt.net); err != nil {
				t.Fatalf("seed %d step %d: incremental assignment invalid: %v", seed, step, err)
			}
			labels, err := freshProb.encode(res.Assignment)
			if err != nil {
				t.Fatalf("seed %d step %d: encode on fresh problem: %v", seed, step, err)
			}
			freshEnergy := freshProb.graph.MustEnergy(labels)
			if math.Abs(freshEnergy-res.Energy) > 1e-6 {
				t.Fatalf("seed %d step %d: patched energy %v != fresh energy %v (drift!)",
					seed, step, res.Energy, freshEnergy)
			}
			if !res.Incremental {
				t.Fatalf("seed %d step %d: expected an incremental re-solve", seed, step)
			}
		}
	}
}

// TestReoptimizeTracksFullSolve checks solution quality: the incremental
// re-solve must stay close to a cold full solve of the mutated network.
func TestReoptimizeTracksFullSolve(t *testing.T) {
	net, sim := churnFixture(t, 60, 5)
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(context.Background()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 3; step++ {
		if err := opt.ApplyDelta(randomDelta(t, opt.net, rng)); err != nil {
			t.Fatal(err)
		}
		inc, err := opt.Reoptimize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewOptimizer(opt.net, sim, Options{MaxIterations: 20})
		if err != nil {
			t.Fatal(err)
		}
		full, err := cold.Optimize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		gap := (inc.Energy - full.Energy) / math.Max(math.Abs(full.Energy), 1e-9)
		if gap > 0.05 {
			t.Fatalf("step %d: incremental energy %v is %.1f%% above full re-solve %v",
				step, inc.Energy, gap*100, full.Energy)
		}
	}
}

// TestReoptimizeNoChangesReturnsPrevious checks the empty-delta fast path.
func TestReoptimizeNoChangesReturnsPrevious(t *testing.T) {
	net, sim := churnFixture(t, 20, 7)
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	first, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Reoptimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental || res.DirtyNodes != 0 {
		t.Fatalf("no-op reoptimize: incremental=%v dirty=%d", res.Incremental, res.DirtyNodes)
	}
	if res.Energy != first.Energy || !res.Assignment.Equal(first.Assignment) {
		t.Fatal("no-op reoptimize changed the solution")
	}
}

// TestReoptimizeWithoutPriorFallsBack checks the cold-start fallback.
func TestReoptimizeWithoutPriorFallsBack(t *testing.T) {
	net, sim := churnFixture(t, 20, 9)
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Reoptimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental {
		t.Fatal("first Reoptimize claimed to be incremental")
	}
	if err := res.Assignment.ValidateFor(net); err != nil {
		t.Fatal(err)
	}
}

// TestThresholdRebuildCompacts drives enough host removals through
// ApplyDelta to trip the tombstone threshold and verifies the problem is
// compacted (and still correct).
func TestThresholdRebuildCompacts(t *testing.T) {
	net, sim := churnFixture(t, 30, 13)
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(context.Background()); err != nil {
		t.Fatal(err)
	}
	hosts := net.Hosts()
	var d netmodel.Delta
	for _, id := range hosts[:12] { // 40% of hosts: beyond the 25% threshold
		d.Ops = append(d.Ops, netmodel.DeltaOp{Op: netmodel.OpRemoveHost, ID: id})
	}
	if err := opt.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if opt.prob.deadCount != 0 {
		t.Fatalf("threshold rebuild did not compact: %d tombstones remain", opt.prob.deadCount)
	}
	res, err := opt.Reoptimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebuilt {
		t.Fatal("Reoptimize did not report the rebuild")
	}
	if err := res.Assignment.ValidateFor(opt.net); err != nil {
		t.Fatal(err)
	}
}

// TestReoptimizeCancelledLeavesPreviousAssignment is the churn-step
// regression test: a cancelled re-solve must leave the previously served
// assignment (and energy) untouched.
func TestReoptimizeCancelledLeavesPreviousAssignment(t *testing.T) {
	net, sim := churnFixture(t, 40, 17)
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	first, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prev := opt.LastAssignment().Clone()
	rng := rand.New(rand.NewSource(3))
	if err := opt.ApplyDelta(randomDelta(t, opt.net, rng)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := opt.Reoptimize(ctx); err == nil {
		t.Fatal("cancelled Reoptimize returned no error")
	}
	if !opt.LastAssignment().Equal(prev) {
		t.Fatal("cancelled Reoptimize mutated the previous assignment")
	}
	if opt.lastEnergy != first.Energy {
		t.Fatal("cancelled Reoptimize mutated the previous energy")
	}
	// The delta stays applied: a later successful Reoptimize picks it up.
	res, err := opt.Reoptimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.ValidateFor(opt.net); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizeParallelCancelled is the regression test for context
// propagation through the block-solve worker pool.
func TestOptimizeParallelCancelled(t *testing.T) {
	net, sim := churnFixture(t, 60, 19)
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 50, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := opt.OptimizeParallel(ctx, 4); err == nil {
		t.Fatal("cancelled OptimizeParallel returned no error")
	}
	if opt.LastAssignment() != nil {
		t.Fatal("cancelled OptimizeParallel recorded a solution")
	}
}

// TestApplyDeltaRejectsConstrainedHostRemoval guards against stranding
// host-specific constraints.
func TestApplyDeltaRejectsConstrainedHostRemoval(t *testing.T) {
	net, sim := churnFixture(t, 10, 23)
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := net.Hosts()[0]
	h, _ := net.Host(id)
	cs := netmodel.NewConstraintSet()
	cs.Fix(id, h.Services[0], h.Choices[h.Services[0]][0])
	if err := opt.SetConstraints(cs); err != nil {
		t.Fatal(err)
	}
	err = opt.ApplyDelta(netmodel.Delta{Ops: []netmodel.DeltaOp{{Op: netmodel.OpRemoveHost, ID: id}}})
	if err == nil {
		t.Fatal("removal of a constrained host was accepted")
	}
	if _, ok := opt.net.Host(id); !ok {
		t.Fatal("rejected removal still mutated the network")
	}
}

// TestApplyDeltaStructuralServiceUpgrade exercises the tombstone + re-add
// path for a host whose candidate lists change shape.
func TestApplyDeltaStructuralServiceUpgrade(t *testing.T) {
	net, sim := churnFixture(t, 20, 29)
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(context.Background()); err != nil {
		t.Fatal(err)
	}
	id := net.Hosts()[3]
	h, _ := net.Host(id)
	// Drop the last candidate of the first service: a structural change.
	choices := map[netmodel.ServiceID][]netmodel.ProductID{}
	for s, ps := range h.Choices {
		choices[s] = append([]netmodel.ProductID(nil), ps...)
	}
	s0 := h.Services[0]
	choices[s0] = choices[s0][:len(choices[s0])-1]
	d := netmodel.Delta{Ops: []netmodel.DeltaOp{{
		Op: netmodel.OpUpdateHostServices, ID: id,
		Services: append([]netmodel.ServiceID(nil), h.Services...),
		Choices:  choices,
	}}}
	if err := opt.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	res, err := opt.Reoptimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewOptimizer(opt.net, sim, Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	freshProb, err := fresh.ensureProblem()
	if err != nil {
		t.Fatal(err)
	}
	labels, err := freshProb.encode(res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got := freshProb.graph.MustEnergy(labels); math.Abs(got-res.Energy) > 1e-6 {
		t.Fatalf("patched energy %v != fresh energy %v after structural upgrade", res.Energy, got)
	}
}

// TestReoptimizeAfterIsolatedHostRemoval covers the empty-dirty-set corner:
// removing a host with no live neighbours leaves nothing dirty, but the
// served assignment must still drop the departed host and its energy.
func TestReoptimizeAfterIsolatedHostRemoval(t *testing.T) {
	net, sim := churnFixture(t, 12, 31)
	lone := &netmodel.Host{
		ID:       "island",
		Services: []netmodel.ServiceID{netgen.ServiceName(0)},
		Choices: map[netmodel.ServiceID][]netmodel.ProductID{
			netgen.ServiceName(0): {netgen.ProductName(0, 0), netgen.ProductName(0, 1)},
		},
	}
	if err := net.AddHost(lone); err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	first, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := first.Assignment.Get("island", netgen.ServiceName(0)); !ok {
		t.Fatal("initial solve misses the isolated host")
	}
	d := netmodel.Delta{Ops: []netmodel.DeltaOp{{Op: netmodel.OpRemoveHost, ID: "island"}}}
	if err := opt.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	res, err := opt.Reoptimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Assignment.Get("island", netgen.ServiceName(0)); ok {
		t.Fatal("served assignment still contains the removed isolated host")
	}
	if err := res.Assignment.ValidateFor(opt.net); err != nil {
		t.Fatal(err)
	}
	if res.Energy >= first.Energy {
		t.Fatalf("energy %v not reduced by the removed host's unary term (was %v)", res.Energy, first.Energy)
	}
}

// TestApplyDeltaBatchMatchesSerialApply pins the batch entry point against
// the serial one: N deltas applied through one ApplyDeltaBatch must leave
// the optimiser in the same state as N ApplyDelta calls — identical
// assignment and energy after the shared Reoptimize.  This is the substrate
// the serving plane's delta coalescing builds on.
func TestApplyDeltaBatchMatchesSerialApply(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		net, sim := churnFixture(t, 40, seed)
		mkOpt := func() *Optimizer {
			opt, err := NewOptimizer(net.Clone(), sim, Options{MaxIterations: 10, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := opt.Optimize(context.Background()); err != nil {
				t.Fatal(err)
			}
			return opt
		}
		serial, batch := mkOpt(), mkOpt()
		rng := rand.New(rand.NewSource(seed * 131))
		deltas := make([]netmodel.Delta, 3)
		for i := range deltas {
			deltas[i] = randomDelta(t, serial.net, rng)
			if err := serial.ApplyDelta(deltas[i]); err != nil {
				t.Fatalf("seed %d: serial ApplyDelta %d: %v", seed, i, err)
			}
		}
		if err := batch.ApplyDeltaBatch(deltas); err != nil {
			t.Fatalf("seed %d: ApplyDeltaBatch: %v", seed, err)
		}
		sres, err := serial.Reoptimize(context.Background())
		if err != nil {
			t.Fatalf("seed %d: serial Reoptimize: %v", seed, err)
		}
		bres, err := batch.Reoptimize(context.Background())
		if err != nil {
			t.Fatalf("seed %d: batch Reoptimize: %v", seed, err)
		}
		if math.Abs(sres.Energy-bres.Energy) > 1e-9 {
			t.Fatalf("seed %d: serial energy %v != batch energy %v", seed, sres.Energy, bres.Energy)
		}
		if !sres.Assignment.Equal(bres.Assignment) {
			t.Fatalf("seed %d: serial and batch assignments differ", seed)
		}
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"netdiversity/internal/baseline"
	"netdiversity/internal/icm"
	"netdiversity/internal/mrf"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/solve"
	"netdiversity/internal/vulnsim"

	// Blank imports register the solver kernels with the solve registry.
	_ "netdiversity/internal/bp"
	_ "netdiversity/internal/trws"
)

// Solver selects the minimisation algorithm.  The four paper solvers have
// fixed selectors below; any further kernel registered with the solve
// registry is assigned a selector dynamically by ParseSolver, so extending
// the system with a new solver touches only the kernel package.
type Solver int

const (
	// SolverTRWS is the sequential tree-reweighted message passing solver
	// used by the paper (default).
	SolverTRWS Solver = iota + 1
	// SolverBP is loopy min-sum belief propagation.
	SolverBP
	// SolverICM is iterated conditional modes local search.
	SolverICM
	// SolverAnneal is ICM with a simulated-annealing acceptance rule.
	SolverAnneal
)

var (
	solverMu     sync.Mutex
	solverByName = map[string]Solver{
		"trws": SolverTRWS, "bp": SolverBP, "icm": SolverICM, "anneal": SolverAnneal,
	}
	nameBySolver = map[Solver]string{
		SolverTRWS: "trws", SolverBP: "bp", SolverICM: "icm", SolverAnneal: "anneal",
	}
	nextSolver = SolverAnneal + 1
)

// String implements fmt.Stringer.
func (s Solver) String() string {
	solverMu.Lock()
	defer solverMu.Unlock()
	if name, ok := nameBySolver[s]; ok {
		return name
	}
	return fmt.Sprintf("solver(%d)", int(s))
}

// ParseSolver converts a registered solver name to a Solver.  Names are
// validated against the solve registry, so only solvers whose kernels are
// actually linked in parse successfully; a registered name beyond the four
// built-in selectors is assigned a fresh selector on first parse.
func ParseSolver(name string) (Solver, error) {
	if name == "" {
		name = "trws"
	}
	if !solve.Registered(name) {
		return 0, fmt.Errorf("core: unknown solver %q (registered: %v)", name, solve.Names())
	}
	solverMu.Lock()
	defer solverMu.Unlock()
	if s, ok := solverByName[name]; ok {
		return s, nil
	}
	s := nextSolver
	nextSolver++
	solverByName[name] = s
	nameBySolver[s] = name
	return s, nil
}

// SolverNames lists the solver names registered with the unified solve
// registry.
func SolverNames() []string { return solve.Names() }

// Options configures the optimiser.
type Options struct {
	// Solver selects the minimisation algorithm; default SolverTRWS.
	Solver Solver
	// UnaryConstant is Pr_const of Eq. 2, the uniform unary cost used when
	// a host has no product preference.  Default 0.01.
	UnaryConstant float64
	// PairwiseWeight scales the similarity cost of Eq. 3 against the unary
	// term.  Default 1.
	PairwiseWeight float64
	// MaxIterations bounds the solver iterations.  Default 100 (50 for the
	// local-search solvers).
	MaxIterations int
	// Workers is the number of goroutines used by parallelisable solver
	// stages.  Default 1.
	Workers int
	// Seed drives the randomised solvers (ICM restarts, annealing).
	Seed int64
	// DisablePolish turns off the local ICM refinement applied to the
	// solver's labeling (useful for solver ablations that want the raw
	// message-passing result).
	DisablePolish bool
	// DisableWarmStart turns off the greedy-colouring warm start normally
	// fed to every solver, so benchmark scenarios can measure a solver's
	// cold-start behaviour.
	DisableWarmStart bool
	// Checkpoint, when set, is handed to every solve this optimiser runs
	// (cold solves, re-optimisations, polish passes).  The solve driver
	// calls it between steps; returning an error aborts the solve.  The
	// serving plane uses it to slice long solves into schedulable units.
	Checkpoint func(context.Context) error
}

func (o Options) withDefaults() Options {
	if o.Solver == 0 {
		o.Solver = SolverTRWS
	}
	if o.UnaryConstant == 0 {
		o.UnaryConstant = 0.01
	}
	if o.PairwiseWeight == 0 {
		o.PairwiseWeight = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Result is the outcome of an optimisation run.
type Result struct {
	// Assignment is the decoded optimal assignment α̂ (or α̂_C).
	Assignment *netmodel.Assignment
	// Energy is the MRF energy of the assignment (Eq. 1).
	Energy float64
	// LowerBound is the solver's lower bound on the optimal energy.
	LowerBound float64
	// Iterations and Converged report solver behaviour.
	Iterations int
	Converged  bool
	// Runtime is the wall-clock time spent building and solving the MRF.
	Runtime time.Duration
	// Nodes and Edges describe the size of the MRF that was solved.
	Nodes, Edges int
	// EnergyHistory records the solver's best energy after every iteration
	// (before the optional local polish), for convergence reporting.
	EnergyHistory []float64
	// ConstraintViolations lists any constraints the decoded assignment
	// still violates (should be empty unless the constraint set is
	// infeasible).
	ConstraintViolations []string
}

// Optimizer computes optimal diversification strategies for one network.
// It is a long-lived engine: the built MRF stays alive across solves,
// network changes are absorbed through ApplyDelta (which patches the MRF in
// place) and Reoptimize warm-starts from the previous solution, so a churn
// step costs O(changed region) instead of a cold build + solve.  Callers
// must route all post-construction network mutations through ApplyDelta;
// mutating the network directly leaves the cached MRF stale.
type Optimizer struct {
	net  *netmodel.Network
	sim  *vulnsim.SimilarityTable
	cs   *netmodel.ConstraintSet
	opts Options
	// costModel and costWeight optionally add deployment costs to the unary
	// term (see SetCostModel).
	costModel  *CostModel
	costWeight float64

	// prob is the live MRF encoding, built lazily and patched by ApplyDelta.
	prob *problem
	// lastAssignment/lastEnergy memoise the most recent solution as the warm
	// start for Reoptimize.
	lastAssignment *netmodel.Assignment
	lastEnergy     float64
	// rebuilt records that a threshold rebuild compacted the problem since
	// the last solve (reported by Reoptimize).
	rebuilt bool
	// pendingDeltas records that ApplyDelta ran since the last solve, so
	// Reoptimize refreshes the served assignment even when the dirty set is
	// empty (e.g. the removal of a host with no live neighbours).
	pendingDeltas bool
}

// ensureProblem returns the live MRF, building it from the network,
// constraints and (optional) cost model on first use or after invalidation.
func (o *Optimizer) ensureProblem() (*problem, error) {
	if o.prob != nil {
		return o.prob, nil
	}
	prob, err := buildProblem(o.net, o.sim, o.cs, o.opts)
	if err != nil {
		return nil, err
	}
	if err := applyCostModel(prob, o.costModel, o.costWeight); err != nil {
		return nil, err
	}
	o.prob = prob
	return prob, nil
}

// invalidateProblem drops the cached MRF so the next solve rebuilds it.
func (o *Optimizer) invalidateProblem() { o.prob = nil }

// ErrNilInput is returned when the network or similarity table is nil.
var ErrNilInput = errors.New("core: network and similarity table must not be nil")

// NewOptimizer creates an optimiser for the network and similarity table.
func NewOptimizer(net *netmodel.Network, sim *vulnsim.SimilarityTable, opts Options) (*Optimizer, error) {
	if net == nil || sim == nil {
		return nil, ErrNilInput
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Optimizer{net: net, sim: sim, opts: opts.withDefaults()}, nil
}

// SetConstraints installs the constraint set C used by subsequent Optimize
// calls (nil clears it).  The cached MRF is invalidated: constraint changes
// reshape the factor set, which is a rebuild, not a patch.
func (o *Optimizer) SetConstraints(cs *netmodel.ConstraintSet) error {
	if cs != nil {
		if err := cs.Validate(o.net); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	o.cs = cs
	o.invalidateProblem()
	return nil
}

// Constraints returns the currently installed constraint set (may be nil).
func (o *Optimizer) Constraints() *netmodel.ConstraintSet { return o.cs }

// Optimize computes the (constrained) optimal assignment with a full (cold)
// solve.  For re-solving after an ApplyDelta, Reoptimize is the incremental
// fast path.
func (o *Optimizer) Optimize(ctx context.Context) (Result, error) {
	start := time.Now()
	prob, err := o.ensureProblem()
	if err != nil {
		return Result{}, err
	}
	sol, err := o.solve(ctx, prob.graph, o.warmStart(prob), nil)
	if err != nil {
		return Result{}, err
	}
	if !o.opts.DisablePolish {
		polished, perr := icm.Polish(prob.graph, sol.Labels, 10)
		if perr != nil {
			return Result{}, perr
		}
		if polished.Energy < sol.Energy {
			sol.Labels = polished.Labels
			sol.Energy = polished.Energy
		}
	}
	assignment, err := prob.decode(sol.Labels)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Assignment:    assignment,
		Energy:        sol.Energy,
		LowerBound:    sol.LowerBound,
		Iterations:    sol.Iterations,
		Converged:     sol.Converged,
		Runtime:       time.Since(start),
		Nodes:         prob.graph.NumNodes(),
		Edges:         prob.graph.NumEdges(),
		EnergyHistory: sol.EnergyHistory,
	}
	if o.cs != nil {
		res.ConstraintViolations = o.cs.Violations(assignment, o.net)
	}
	// A full solve absorbs every pending delta: memoise the solution as the
	// next Reoptimize warm start and reset the dirty bookkeeping.
	o.lastAssignment = assignment
	o.lastEnergy = sol.Energy
	prob.clearDirty()
	o.rebuilt = false
	o.pendingDeltas = false
	return res, nil
}

// warmStart encodes the greedy-colouring baseline as an initial labeling so
// that every solver starts from (and can never end worse than) the strongest
// non-optimising strategy.  It returns nil when warm starts are disabled or
// the baseline is unavailable for the current constraint set.
func (o *Optimizer) warmStart(prob *problem) []int {
	if o.opts.DisableWarmStart {
		return nil
	}
	greedy, err := baseline.GreedyColoring(o.net, o.sim, o.cs)
	if err != nil {
		return nil
	}
	labels, err := prob.encode(greedy)
	if err != nil {
		return nil
	}
	return labels
}

// solve runs the configured solver through the unified solve registry.  All
// solvers share the same driver (best-labeling tracking, convergence rule,
// energy history, cancellation); the registry name comes from the Solver
// selector.  A non-nil dirty mask switches warm-capable kernels to the
// incremental dirty-frontier schedule.
func (o *Optimizer) solve(ctx context.Context, g *mrf.Graph, initial []int, dirty []bool) (mrf.Solution, error) {
	name := o.opts.Solver.String()
	if !solve.Registered(name) {
		return mrf.Solution{}, fmt.Errorf("core: unknown solver %v", o.opts.Solver)
	}
	return solve.Solve(ctx, name, g, solve.Options{
		MaxIterations: o.opts.MaxIterations,
		Workers:       o.opts.Workers,
		Seed:          o.opts.Seed,
		InitialLabels: initial,
		DirtyMask:     dirty,
		Checkpoint:    o.opts.Checkpoint,
	})
}

// Energy evaluates the optimisation objective of Eq. 1 for an arbitrary
// (complete) assignment under this optimiser's options and constraints.
// It lets baseline assignments be compared on the exact objective the
// optimiser minimises.
func (o *Optimizer) Energy(a *netmodel.Assignment) (float64, error) {
	if a == nil {
		return 0, errors.New("core: nil assignment")
	}
	prob, err := o.ensureProblem()
	if err != nil {
		return 0, err
	}
	labels, err := prob.encode(a)
	if err != nil {
		return 0, err
	}
	return prob.graph.Energy(labels)
}

// PairwiseSimilarityCost returns only the pairwise part of the objective
// (Eq. 3) for an assignment: the summed similarity over all links and shared
// services.  This is the quantity the diversification is really trying to
// drive down and is reported by the examples.
func PairwiseSimilarityCost(net *netmodel.Network, sim *vulnsim.SimilarityTable, a *netmodel.Assignment) (float64, error) {
	if net == nil || sim == nil {
		return 0, ErrNilInput
	}
	if a == nil {
		return 0, errors.New("core: nil assignment")
	}
	total := 0.0
	for _, link := range net.Links() {
		for _, s := range net.SharedServices(link.A, link.B) {
			pa, oka := a.Get(link.A, s)
			pb, okb := a.Get(link.B, s)
			if !oka || !okb {
				return 0, fmt.Errorf("core: assignment misses %s or %s for service %s", link.A, link.B, s)
			}
			total += sim.Sim(string(pa), string(pb))
		}
	}
	return total, nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"netdiversity/internal/bp"
	"netdiversity/internal/icm"
	"netdiversity/internal/mrf"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/trws"
	"netdiversity/internal/vulnsim"
)

// Solver selects the minimisation algorithm.
type Solver int

const (
	// SolverTRWS is the sequential tree-reweighted message passing solver
	// used by the paper (default).
	SolverTRWS Solver = iota + 1
	// SolverBP is loopy min-sum belief propagation.
	SolverBP
	// SolverICM is iterated conditional modes local search.
	SolverICM
	// SolverAnneal is ICM with a simulated-annealing acceptance rule.
	SolverAnneal
)

// String implements fmt.Stringer.
func (s Solver) String() string {
	switch s {
	case SolverTRWS:
		return "trws"
	case SolverBP:
		return "bp"
	case SolverICM:
		return "icm"
	case SolverAnneal:
		return "anneal"
	default:
		return fmt.Sprintf("solver(%d)", int(s))
	}
}

// ParseSolver converts a name ("trws", "bp", "icm", "anneal") to a Solver.
func ParseSolver(name string) (Solver, error) {
	switch name {
	case "trws", "":
		return SolverTRWS, nil
	case "bp":
		return SolverBP, nil
	case "icm":
		return SolverICM, nil
	case "anneal":
		return SolverAnneal, nil
	default:
		return 0, fmt.Errorf("core: unknown solver %q", name)
	}
}

// Options configures the optimiser.
type Options struct {
	// Solver selects the minimisation algorithm; default SolverTRWS.
	Solver Solver
	// UnaryConstant is Pr_const of Eq. 2, the uniform unary cost used when
	// a host has no product preference.  Default 0.01.
	UnaryConstant float64
	// PairwiseWeight scales the similarity cost of Eq. 3 against the unary
	// term.  Default 1.
	PairwiseWeight float64
	// MaxIterations bounds the solver iterations.  Default 100 (50 for the
	// local-search solvers).
	MaxIterations int
	// Workers is the number of goroutines used by parallelisable solver
	// stages.  Default 1.
	Workers int
	// Seed drives the randomised solvers (ICM restarts, annealing).
	Seed int64
	// DisablePolish turns off the local ICM refinement applied to the
	// solver's labeling (useful for solver ablations that want the raw
	// message-passing result).
	DisablePolish bool
}

func (o Options) withDefaults() Options {
	if o.Solver == 0 {
		o.Solver = SolverTRWS
	}
	if o.UnaryConstant == 0 {
		o.UnaryConstant = 0.01
	}
	if o.PairwiseWeight == 0 {
		o.PairwiseWeight = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Result is the outcome of an optimisation run.
type Result struct {
	// Assignment is the decoded optimal assignment α̂ (or α̂_C).
	Assignment *netmodel.Assignment
	// Energy is the MRF energy of the assignment (Eq. 1).
	Energy float64
	// LowerBound is the solver's lower bound on the optimal energy.
	LowerBound float64
	// Iterations and Converged report solver behaviour.
	Iterations int
	Converged  bool
	// Runtime is the wall-clock time spent building and solving the MRF.
	Runtime time.Duration
	// Nodes and Edges describe the size of the MRF that was solved.
	Nodes, Edges int
	// EnergyHistory records the solver's best energy after every iteration
	// (before the optional local polish), for convergence reporting.
	EnergyHistory []float64
	// ConstraintViolations lists any constraints the decoded assignment
	// still violates (should be empty unless the constraint set is
	// infeasible).
	ConstraintViolations []string
}

// Optimizer computes optimal diversification strategies for one network.
type Optimizer struct {
	net  *netmodel.Network
	sim  *vulnsim.SimilarityTable
	cs   *netmodel.ConstraintSet
	opts Options
	// costModel and costWeight optionally add deployment costs to the unary
	// term (see SetCostModel).
	costModel  *CostModel
	costWeight float64
}

// buildProblem constructs the MRF for this optimiser's network, constraints
// and (optional) cost model.
func (o *Optimizer) buildProblem() (*problem, error) {
	prob, err := buildProblem(o.net, o.sim, o.cs, o.opts)
	if err != nil {
		return nil, err
	}
	if err := applyCostModel(prob, o.costModel, o.costWeight); err != nil {
		return nil, err
	}
	return prob, nil
}

// ErrNilInput is returned when the network or similarity table is nil.
var ErrNilInput = errors.New("core: network and similarity table must not be nil")

// NewOptimizer creates an optimiser for the network and similarity table.
func NewOptimizer(net *netmodel.Network, sim *vulnsim.SimilarityTable, opts Options) (*Optimizer, error) {
	if net == nil || sim == nil {
		return nil, ErrNilInput
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Optimizer{net: net, sim: sim, opts: opts.withDefaults()}, nil
}

// SetConstraints installs the constraint set C used by subsequent Optimize
// calls (nil clears it).
func (o *Optimizer) SetConstraints(cs *netmodel.ConstraintSet) error {
	if cs != nil {
		if err := cs.Validate(o.net); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	o.cs = cs
	return nil
}

// Constraints returns the currently installed constraint set (may be nil).
func (o *Optimizer) Constraints() *netmodel.ConstraintSet { return o.cs }

// Optimize computes the (constrained) optimal assignment.
func (o *Optimizer) Optimize(ctx context.Context) (Result, error) {
	start := time.Now()
	prob, err := o.buildProblem()
	if err != nil {
		return Result{}, err
	}
	sol, err := o.solve(ctx, prob.graph)
	if err != nil {
		return Result{}, err
	}
	if !o.opts.DisablePolish {
		polished, perr := icm.Polish(prob.graph, sol.Labels, 10)
		if perr != nil {
			return Result{}, perr
		}
		if polished.Energy < sol.Energy {
			sol.Labels = polished.Labels
			sol.Energy = polished.Energy
		}
	}
	assignment, err := prob.decode(sol.Labels)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Assignment:    assignment,
		Energy:        sol.Energy,
		LowerBound:    sol.LowerBound,
		Iterations:    sol.Iterations,
		Converged:     sol.Converged,
		Runtime:       time.Since(start),
		Nodes:         prob.graph.NumNodes(),
		Edges:         prob.graph.NumEdges(),
		EnergyHistory: sol.EnergyHistory,
	}
	if o.cs != nil {
		res.ConstraintViolations = o.cs.Violations(assignment, o.net)
	}
	return res, nil
}

func (o *Optimizer) solve(ctx context.Context, g *mrf.Graph) (mrf.Solution, error) {
	switch o.opts.Solver {
	case SolverTRWS:
		return trws.SolveContext(ctx, g, trws.Options{
			MaxIterations: o.opts.MaxIterations,
			Workers:       o.opts.Workers,
		})
	case SolverBP:
		return bp.SolveContext(ctx, g, bp.Options{MaxIterations: o.opts.MaxIterations})
	case SolverICM:
		return icm.SolveContext(ctx, g, icm.Options{
			MaxIterations: o.opts.MaxIterations,
			Seed:          o.opts.Seed,
		})
	case SolverAnneal:
		return icm.SolveContext(ctx, g, icm.Options{
			MaxIterations: o.opts.MaxIterations,
			Seed:          o.opts.Seed,
			Annealing:     true,
			Restarts:      4,
		})
	default:
		return mrf.Solution{}, fmt.Errorf("core: unknown solver %v", o.opts.Solver)
	}
}

// Energy evaluates the optimisation objective of Eq. 1 for an arbitrary
// (complete) assignment under this optimiser's options and constraints.
// It lets baseline assignments be compared on the exact objective the
// optimiser minimises.
func (o *Optimizer) Energy(a *netmodel.Assignment) (float64, error) {
	if a == nil {
		return 0, errors.New("core: nil assignment")
	}
	prob, err := o.buildProblem()
	if err != nil {
		return 0, err
	}
	labels, err := prob.encode(a)
	if err != nil {
		return 0, err
	}
	return prob.graph.Energy(labels)
}

// PairwiseSimilarityCost returns only the pairwise part of the objective
// (Eq. 3) for an assignment: the summed similarity over all links and shared
// services.  This is the quantity the diversification is really trying to
// drive down and is reported by the examples.
func PairwiseSimilarityCost(net *netmodel.Network, sim *vulnsim.SimilarityTable, a *netmodel.Assignment) (float64, error) {
	if net == nil || sim == nil {
		return 0, ErrNilInput
	}
	if a == nil {
		return 0, errors.New("core: nil assignment")
	}
	total := 0.0
	for _, link := range net.Links() {
		for _, s := range net.SharedServices(link.A, link.B) {
			pa, oka := a.Get(link.A, s)
			pb, okb := a.Get(link.B, s)
			if !oka || !okb {
				return 0, fmt.Errorf("core: assignment misses %s or %s for service %s", link.A, link.B, s)
			}
			total += sim.Sim(string(pa), string(pb))
		}
	}
	return total, nil
}

package core

import (
	"context"
	"math"
	"testing"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// costNetwork: two connected hosts, one OS service, two products: the cheap
// one ("cheap") and the expensive one ("pricey"), which share a high
// similarity so that diversity and cost pull in opposite directions.
func costNetwork(t *testing.T) (*netmodel.Network, *vulnsim.SimilarityTable, CostModel) {
	t.Helper()
	net := netmodel.New()
	for _, id := range []netmodel.HostID{"a", "b", "c"} {
		h := &netmodel.Host{
			ID:       id,
			Services: []netmodel.ServiceID{"os"},
			Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"cheap", "pricey"}},
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]netmodel.HostID{{"a", "b"}, {"b", "c"}} {
		if err := net.AddLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	sim := vulnsim.NewSimilarityTable([]string{"cheap", "pricey"})
	_ = sim.Set("cheap", "pricey", 0.1, 1)
	model := CostModel{
		Costs:       map[netmodel.ProductID]float64{"pricey": 10, "cheap": 1},
		DefaultCost: 1,
	}
	return net, sim, model
}

func TestCostModelBasics(t *testing.T) {
	_, _, model := costNetwork(t)
	if model.Cost("pricey") != 10 || model.Cost("cheap") != 1 {
		t.Error("explicit costs wrong")
	}
	if model.Cost("unknown") != 1 {
		t.Error("default cost wrong")
	}
	if err := model.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := CostModel{Costs: map[netmodel.ProductID]float64{"x": -1}}
	if err := bad.Validate(); err == nil {
		t.Error("negative cost should be rejected")
	}
	if err := (CostModel{DefaultCost: -1}).Validate(); err == nil {
		t.Error("negative default cost should be rejected")
	}
}

func TestTotalCost(t *testing.T) {
	net, _, model := costNetwork(t)
	a := netmodel.NewAssignment()
	a.Set("a", "os", "cheap")
	a.Set("b", "os", "pricey")
	a.Set("c", "os", "cheap")
	total, err := model.TotalCost(net, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-12) > 1e-9 {
		t.Errorf("total cost = %v, want 12", total)
	}
	if _, err := model.TotalCost(nil, a); err == nil {
		t.Error("nil network should be rejected")
	}
	if _, err := model.TotalCost(net, netmodel.NewAssignment()); err == nil {
		t.Error("incomplete assignment should be rejected")
	}
}

func TestSetCostModelValidation(t *testing.T) {
	net, sim, model := costNetwork(t)
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.SetCostModel(model, -1); err == nil {
		t.Error("negative weight should be rejected")
	}
	if err := opt.SetCostModel(CostModel{DefaultCost: -1}, 1); err == nil {
		t.Error("invalid model should be rejected")
	}
	if err := opt.SetCostModel(model, 0.5); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestCostWeightTradesDiversityForCost(t *testing.T) {
	net, sim, model := costNetwork(t)

	optimize := func(weight float64) (*netmodel.Assignment, float64, float64) {
		t.Helper()
		opt, err := NewOptimizer(net, sim, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if weight > 0 {
			if err := opt.SetCostModel(model, weight); err != nil {
				t.Fatal(err)
			}
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		cost, err := model.TotalCost(net, res.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		pair, err := PairwiseSimilarityCost(net, sim, res.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		return res.Assignment, cost, pair
	}

	// Without a cost term the optimum alternates products (cost 12 or 21).
	_, freeCost, freePair := optimize(0)
	// With a heavy cost weight everything moves to the cheap product.
	aCostly, heavyCost, heavyPair := optimize(10)

	if heavyCost >= freeCost {
		t.Errorf("cost-aware optimisation should reduce deployment cost: %v vs %v", heavyCost, freeCost)
	}
	if heavyPair < freePair {
		t.Errorf("cheaper deployment should sacrifice diversity: pairwise %v vs %v", heavyPair, freePair)
	}
	for _, hid := range net.Hosts() {
		if aCostly.Product(hid, "os") != "cheap" {
			t.Errorf("heavy cost weight should pick the cheap product everywhere, %s got %v",
				hid, aCostly.Product(hid, "os"))
		}
	}
}

func TestCostModelInParallelOptimization(t *testing.T) {
	net, sim, model := costNetwork(t)
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.SetCostModel(model, 10); err != nil {
		t.Fatal(err)
	}
	res, err := opt.OptimizeParallel(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, hid := range net.Hosts() {
		if res.Assignment.Product(hid, "os") != "cheap" {
			t.Errorf("parallel optimisation should respect the cost model, %s got %v",
				hid, res.Assignment.Product(hid, "os"))
		}
	}
}

package core

import (
	"strings"
	"testing"

	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
)

// legacyCacheKey is the string-concatenation key the FNV hash replaced; it
// is kept here so the benchmark documents the win (one allocation per edge
// versus none).
func legacyCacheKey(a, b []netmodel.ProductID) string {
	var sb strings.Builder
	for _, p := range a {
		sb.WriteString(string(p))
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	for _, p := range b {
		sb.WriteString(string(p))
		sb.WriteByte(',')
	}
	return sb.String()
}

func benchCandidates() ([]netmodel.ProductID, []netmodel.ProductID) {
	a := make([]netmodel.ProductID, 4)
	b := make([]netmodel.ProductID, 4)
	for i := range a {
		a[i] = netgen.ProductName(0, i)
		b[i] = netgen.ProductName(1, i)
	}
	return a, b
}

func BenchmarkCacheKeyFNV(bm *testing.B) {
	a, b := benchCandidates()
	bm.ReportAllocs()
	var sink uint64
	for i := 0; i < bm.N; i++ {
		sink += cacheKey(a, b)
	}
	_ = sink
}

func BenchmarkCacheKeyLegacyString(bm *testing.B) {
	a, b := benchCandidates()
	bm.ReportAllocs()
	var sink int
	for i := 0; i < bm.N; i++ {
		sink += len(legacyCacheKey(a, b))
	}
	_ = sink
}

// BenchmarkBuildProblem measures the full MRF build (the cache key is on its
// per-edge hot path).
func BenchmarkBuildProblem(bm *testing.B) {
	cfg := netgen.RandomConfig{Hosts: 500, Degree: 8, Services: 3, ProductsPerService: 4, Seed: 42}
	net, err := netgen.Random(cfg)
	if err != nil {
		bm.Fatal(err)
	}
	sim := netgen.SyntheticSimilarity(cfg, 0.6)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if _, err := buildProblem(net, sim, nil, Options{}.withDefaults()); err != nil {
			bm.Fatal(err)
		}
	}
}

// TestCacheKeySeparatesBoundaries guards the hash against list-boundary
// aliasing ("ab","c" vs "a","bc") and side swaps.
func TestCacheKeySeparatesBoundaries(t *testing.T) {
	k1 := cacheKey([]netmodel.ProductID{"ab", "c"}, []netmodel.ProductID{"d"})
	k2 := cacheKey([]netmodel.ProductID{"a", "bc"}, []netmodel.ProductID{"d"})
	if k1 == k2 {
		t.Fatal("cache key does not separate product boundaries")
	}
	k3 := cacheKey([]netmodel.ProductID{"a"}, []netmodel.ProductID{"b"})
	k4 := cacheKey([]netmodel.ProductID{"b"}, []netmodel.ProductID{"a"})
	if k3 == k4 {
		t.Fatal("cache key does not separate the two sides")
	}
	if cacheKey([]netmodel.ProductID{"a", "b"}, nil) == cacheKey([]netmodel.ProductID{"a"}, []netmodel.ProductID{"b"}) {
		t.Fatal("cache key does not separate the list split point")
	}
}

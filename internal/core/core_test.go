package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"netdiversity/internal/baseline"
	"netdiversity/internal/netgen"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// triangleNetwork builds three fully connected hosts with one OS service and
// two candidate products whose similarity is 0.8.
func triangleNetwork(t *testing.T) (*netmodel.Network, *vulnsim.SimilarityTable) {
	t.Helper()
	net := netmodel.New()
	for _, id := range []netmodel.HostID{"a", "b", "c"} {
		h := &netmodel.Host{
			ID:       id,
			Services: []netmodel.ServiceID{"os"},
			Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"p1", "p2"}},
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]netmodel.HostID{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		if err := net.AddLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	sim := vulnsim.NewSimilarityTable([]string{"p1", "p2"})
	_ = sim.SetTotal("p1", 100)
	_ = sim.SetTotal("p2", 100)
	_ = sim.Set("p1", "p2", 0.8, 80)
	return net, sim
}

func caseNetwork(t *testing.T) (*netmodel.Network, *vulnsim.SimilarityTable) {
	t.Helper()
	net := netmodel.New()
	for _, id := range []netmodel.HostID{"x", "y"} {
		h := &netmodel.Host{
			ID:       id,
			Services: []netmodel.ServiceID{"os", "wb"},
			Choices: map[netmodel.ServiceID][]netmodel.ProductID{
				"os": {"win7", "ubt1404"},
				"wb": {"ie10", "chrome50"},
			},
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddLink("x", "y"); err != nil {
		t.Fatal(err)
	}
	return net, vulnsim.PaperSimilarity()
}

func TestNewOptimizerValidation(t *testing.T) {
	net, sim := triangleNetwork(t)
	if _, err := NewOptimizer(nil, sim, Options{}); !errors.Is(err, ErrNilInput) {
		t.Error("nil network should be rejected")
	}
	if _, err := NewOptimizer(net, nil, Options{}); !errors.Is(err, ErrNilInput) {
		t.Error("nil similarity table should be rejected")
	}
	if _, err := NewOptimizer(netmodel.New(), sim, Options{}); err == nil {
		t.Error("empty network should be rejected")
	}
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Constraints() != nil {
		t.Error("fresh optimiser should have no constraints")
	}
}

func TestOptimizeTriangle(t *testing.T) {
	net, sim := triangleNetwork(t)
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.ValidateFor(net); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	// On a triangle with two products one edge must carry identical products.
	// The optimum uses two distinct products ({A,A,B} up to symmetry), giving
	// pairwise cost 1.0 + 0.8 + 0.8 = 2.6; the homogeneous labeling costs 3.0.
	cost, err := PairwiseSimilarityCost(net, sim, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-2.6) > 1e-9 {
		t.Errorf("triangle pairwise cost = %v, want 2.6", cost)
	}
	if res.Nodes != 3 || res.Edges != 3 {
		t.Errorf("MRF size = %d nodes %d edges, want 3/3", res.Nodes, res.Edges)
	}
	if res.Energy < res.LowerBound-1e-9 {
		t.Error("energy below lower bound")
	}
}

func TestOptimizeBeatsBaselines(t *testing.T) {
	cfg := netgen.RandomConfig{Hosts: 60, Degree: 6, Services: 3, ProductsPerService: 4, Seed: 3}
	net, err := netgen.Random(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := netgen.SyntheticSimilarity(cfg, 0.6)
	opt, err := NewOptimizer(net, sim, Options{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	optCost, err := PairwiseSimilarityCost(net, sim, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	random, err := baseline.Random(net, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	randomCost, _ := PairwiseSimilarityCost(net, sim, random)
	mono, err := baseline.Mono(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	monoCost, _ := PairwiseSimilarityCost(net, sim, mono)
	if optCost >= randomCost {
		t.Errorf("optimal cost %v should beat random %v", optCost, randomCost)
	}
	if optCost >= monoCost {
		t.Errorf("optimal cost %v should beat mono %v", optCost, monoCost)
	}
}

func TestEnergyMatchesManualComputation(t *testing.T) {
	net, sim := caseNetwork(t)
	opt, err := NewOptimizer(net, sim, Options{UnaryConstant: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	a := netmodel.NewAssignment()
	a.Set("x", "os", "win7")
	a.Set("x", "wb", "ie10")
	a.Set("y", "os", "win7")
	a.Set("y", "wb", "chrome50")
	got, err := opt.Energy(a)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 1: unary 4 * 0.01 + pairwise sim(win7,win7)=1 + sim(ie10,chrome50)=0.
	want := 4*0.01 + 1.0 + sim.Sim("ie10", "chrome50")
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Energy = %v, want %v", got, want)
	}

	if _, err := opt.Energy(nil); err == nil {
		t.Error("nil assignment should be rejected")
	}
	incomplete := netmodel.NewAssignment()
	incomplete.Set("x", "os", "win7")
	if _, err := opt.Energy(incomplete); err == nil {
		t.Error("incomplete assignment should be rejected")
	}
	bad := a.Clone()
	bad.Set("x", "os", "not_a_candidate")
	if _, err := opt.Energy(bad); err == nil {
		t.Error("non-candidate product should be rejected")
	}
}

func TestOptimizeWithFixedConstraint(t *testing.T) {
	net, sim := caseNetwork(t)
	cs := netmodel.NewConstraintSet()
	cs.Fix("x", "os", "win7")
	cs.Fix("y", "os", "win7")
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.SetConstraints(cs); err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Product("x", "os") != "win7" || res.Assignment.Product("y", "os") != "win7" {
		t.Errorf("fixed products not respected: %v", res.Assignment)
	}
	if len(res.ConstraintViolations) != 0 {
		t.Errorf("unexpected violations: %v", res.ConstraintViolations)
	}
	// The browsers remain free and should be diversified.
	if res.Assignment.Product("x", "wb") == res.Assignment.Product("y", "wb") {
		t.Error("free browsers should be diversified")
	}
}

func TestOptimizeWithForbidConstraint(t *testing.T) {
	net, sim := caseNetwork(t)
	cs := netmodel.NewConstraintSet()
	cs.Add(netmodel.Constraint{
		Host:     netmodel.AllHosts,
		ServiceM: "os",
		ServiceN: "wb",
		ProductJ: "ubt1404",
		ProductK: "ie10",
		Mode:     netmodel.Forbid,
	})
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.SetConstraints(cs); err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, hid := range net.Hosts() {
		if res.Assignment.Product(hid, "os") == "ubt1404" && res.Assignment.Product(hid, "wb") == "ie10" {
			t.Errorf("forbidden combination ubt1404+ie10 assigned on %s", hid)
		}
	}
	if len(res.ConstraintViolations) != 0 {
		t.Errorf("unexpected violations: %v", res.ConstraintViolations)
	}
}

func TestOptimizeWithRequireConstraint(t *testing.T) {
	net, sim := caseNetwork(t)
	cs := netmodel.NewConstraintSet()
	cs.Fix("x", "os", "win7")
	cs.Add(netmodel.Constraint{
		Host:     "x",
		ServiceM: "os",
		ServiceN: "wb",
		ProductJ: "win7",
		ProductK: "ie10",
		Mode:     netmodel.Require,
	})
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.SetConstraints(cs); err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Product("x", "wb") != "ie10" {
		t.Errorf("require constraint not honoured: %v", res.Assignment)
	}
}

func TestOptimizeLegacyHostPinned(t *testing.T) {
	net := netmodel.New()
	legacy := &netmodel.Host{
		ID:       "legacy",
		Legacy:   true,
		Services: []netmodel.ServiceID{"os"},
		Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"winxp", "win7"}},
	}
	modern := &netmodel.Host{
		ID:       "modern",
		Services: []netmodel.ServiceID{"os"},
		Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"winxp", "win7"}},
	}
	if err := net.AddHost(legacy); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost(modern); err != nil {
		t.Fatal(err)
	}
	if err := net.AddLink("legacy", "modern"); err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(net, vulnsim.PaperSimilarity(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Product("legacy", "os") != "winxp" {
		t.Errorf("legacy host should keep its first (installed) candidate, got %v",
			res.Assignment.Product("legacy", "os"))
	}
	if res.Assignment.Product("modern", "os") != "win7" {
		t.Errorf("modern host should diversify away from the legacy product, got %v",
			res.Assignment.Product("modern", "os"))
	}
}

func TestSetConstraintsValidation(t *testing.T) {
	net, sim := caseNetwork(t)
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := netmodel.NewConstraintSet()
	bad.Fix("x", "os", "not_a_candidate")
	if err := opt.SetConstraints(bad); err == nil {
		t.Error("invalid constraint set should be rejected")
	}
	if err := opt.SetConstraints(nil); err != nil {
		t.Errorf("clearing constraints should succeed: %v", err)
	}
}

func TestSolvers(t *testing.T) {
	net, sim := caseNetwork(t)
	for _, solver := range []Solver{SolverTRWS, SolverBP, SolverICM, SolverAnneal} {
		opt, err := NewOptimizer(net, sim, Options{Solver: solver, MaxIterations: 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			t.Fatalf("solver %s: %v", solver, err)
		}
		if err := res.Assignment.ValidateFor(net); err != nil {
			t.Errorf("solver %s produced an invalid assignment: %v", solver, err)
		}
	}
	opt, _ := NewOptimizer(net, sim, Options{Solver: Solver(99)})
	if _, err := opt.Optimize(context.Background()); err == nil {
		t.Error("unknown solver should be rejected")
	}
}

func TestParseSolver(t *testing.T) {
	tests := []struct {
		in      string
		want    Solver
		wantErr bool
	}{
		{"trws", SolverTRWS, false},
		{"", SolverTRWS, false},
		{"bp", SolverBP, false},
		{"icm", SolverICM, false},
		{"anneal", SolverAnneal, false},
		{"bogus", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseSolver(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseSolver(%q) should fail", tt.in)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("ParseSolver(%q) = %v, %v", tt.in, got, err)
		}
	}
	if SolverTRWS.String() != "trws" || Solver(99).String() == "" {
		t.Error("Solver.String misbehaves")
	}
}

func TestPairwiseSimilarityCostErrors(t *testing.T) {
	net, sim := caseNetwork(t)
	if _, err := PairwiseSimilarityCost(nil, sim, netmodel.NewAssignment()); err == nil {
		t.Error("nil network should be rejected")
	}
	if _, err := PairwiseSimilarityCost(net, sim, nil); err == nil {
		t.Error("nil assignment should be rejected")
	}
	incomplete := netmodel.NewAssignment()
	incomplete.Set("x", "os", "win7")
	if _, err := PairwiseSimilarityCost(net, sim, incomplete); err == nil {
		t.Error("incomplete assignment should be rejected")
	}
}

func TestOptimizeContextCancelled(t *testing.T) {
	net, sim := caseNetwork(t)
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := opt.Optimize(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context should surface, got %v", err)
	}
}

func TestDisableWarmStart(t *testing.T) {
	// The triangle is tie-heavy: unary costs are uniform, so a raw (no
	// polish) one-sweep BP decode collapses to the homogeneous labeling
	// (energy 3*0.8 + unary), while the greedy-colouring warm start
	// alternates products and leaves only one conflicting edge (0.8 +
	// unary).  The energy gap discriminates the flag: if DisableWarmStart
	// were a no-op, both runs would return the warm-started energy.
	net, sim := triangleNetwork(t)
	solveRaw := func(disableWarmStart bool) Result {
		t.Helper()
		opt, err := NewOptimizer(net, sim, Options{
			Solver:           SolverBP,
			MaxIterations:    1,
			Seed:             1,
			DisablePolish:    true,
			DisableWarmStart: disableWarmStart,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Optimize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Assignment.ValidateFor(net); err != nil {
			t.Fatalf("assignment invalid: %v", err)
		}
		return res
	}
	coldRes := solveRaw(true)
	warmRes := solveRaw(false)
	if coldRes.Energy <= warmRes.Energy {
		t.Errorf("cold-start energy %v should exceed warm-started energy %v on the tie-heavy triangle",
			coldRes.Energy, warmRes.Energy)
	}
	// The warm start seeds the solver with the greedy-colouring baseline, so
	// the warm result can never be worse than that baseline.
	greedy, err := baseline.GreedyColoring(net, sim, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(net, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	greedyEnergy, err := opt.Energy(greedy)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Energy > greedyEnergy+1e-9 {
		t.Errorf("warm-started energy %v worse than its greedy seed %v", warmRes.Energy, greedyEnergy)
	}
}

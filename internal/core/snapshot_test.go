package core

import (
	"context"
	"testing"

	"netdiversity/internal/netmodel"
)

// TestSnapshot pins the serving-layer contract: Snapshot returns a deep copy
// of the last solution, absent before the first solve, and unaffected by
// later mutation of the copy or by subsequent re-optimisations.
func TestSnapshot(t *testing.T) {
	net, sim := churnFixture(t, 20, 4)
	opt, err := NewOptimizer(net, sim, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := opt.Snapshot(); ok {
		t.Fatal("snapshot available before first solve")
	}

	res, err := opt.Optimize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap, energy, ok := opt.Snapshot()
	if !ok {
		t.Fatal("snapshot unavailable after solve")
	}
	if energy != res.Energy {
		t.Fatalf("snapshot energy %v, want %v", energy, res.Energy)
	}
	if !snap.Equal(res.Assignment) {
		t.Fatal("snapshot differs from the solved assignment")
	}

	// Mutating the copy must not leak into the optimiser's served state.
	hosts := snap.Hosts()
	first := hosts[0]
	for svc := range snap.HostAssignment(first) {
		snap.Set(first, svc, "poisoned")
	}
	again, _, _ := opt.Snapshot()
	if again.Equal(snap) {
		t.Fatal("snapshot shares state with a previously returned copy")
	}
	if !again.Equal(res.Assignment) {
		t.Fatal("served assignment was corrupted through a snapshot copy")
	}

	// A delta + re-optimise produces a fresh snapshot for the new state.
	victim := hosts[len(hosts)-1]
	if err := opt.ApplyDelta(netmodel.Delta{Ops: []netmodel.DeltaOp{
		{Op: netmodel.OpRemoveHost, ID: victim},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Reoptimize(context.Background()); err != nil {
		t.Fatal(err)
	}
	after, _, ok := opt.Snapshot()
	if !ok {
		t.Fatal("snapshot unavailable after reoptimize")
	}
	if _, found := after.Get(victim, netmodel.ServiceID("s1")); found {
		t.Fatal("snapshot still assigns the removed host")
	}
}

package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"netdiversity/internal/icm"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/solve"
)

// Incremental re-optimisation.  ApplyDelta threads a netmodel.Delta through
// both the network and the live MRF: unary rows are patched in the flat
// buffer, new hosts append MRF nodes, removed hosts are tombstoned (zeroed
// unary, incident edges dropped from the CSR adjacency) and link changes
// add/remove interned pairwise factors.  Every touched variable lands in the
// problem's dirty set; Reoptimize then warm-starts the configured solver
// from the previous solution with that dirty frontier, so untouched regions
// are never swept.  When tombstones accumulate past a threshold the problem
// is rebuilt from the (already mutated) network — the scoped fallback that
// keeps the flat storage compact under sustained churn.

// rebuildDeadFraction is the tombstone share beyond which ApplyDelta
// compacts the problem with a full rebuild instead of patching further.
const rebuildDeadFraction = 0.25

// reoptimizeMaxIterations caps the warm solver's sweep budget and
// reoptimizePatience its non-improving plateau: a warm start inside the
// target basin converges in a handful of sweeps, so the cold-solve budget
// would mostly buy idle plateau sweeps.
const (
	reoptimizeMaxIterations = 15
	reoptimizePatience      = 3
)

// ApplyDelta applies a network delta to the optimiser's network and patches
// the live MRF in place.  On error the network may be left with a prefix of
// the delta applied and the cached MRF is invalidated (the next solve
// rebuilds it from the network's current state); the previous solution is
// never touched, so a failed or cancelled churn step keeps serving the last
// good assignment.
func (o *Optimizer) ApplyDelta(d netmodel.Delta) error {
	return o.ApplyDeltaBatch([]netmodel.Delta{d})
}

// ApplyDeltaBatch applies several deltas as one mutation batch: every op of
// every delta is threaded through the network and the live MRF exactly as
// ApplyDelta would, but the tombstone-pressure compaction check runs once at
// the end instead of once per delta — a serving layer coalescing queued
// deltas pays one bounded rebuild per batch in the worst case instead of N.
// Error semantics match ApplyDelta: on failure the network may be left with
// a prefix of the batch applied and the cached MRF is invalidated (callers
// pre-validate with netmodel.BatchChecker to rule this out); the previous
// solution is never touched.
func (o *Optimizer) ApplyDeltaBatch(deltas []netmodel.Delta) error {
	for _, d := range deltas {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	for di, d := range deltas {
		for i, op := range d.Ops {
			if err := o.applyOp(op); err != nil {
				o.invalidateProblem()
				if len(deltas) > 1 {
					return fmt.Errorf("core: delta %d op %d (%s): %w", di, i, op.Op, err)
				}
				return fmt.Errorf("core: delta op %d (%s): %w", i, op.Op, err)
			}
		}
	}
	if len(deltas) > 0 && o.prob != nil {
		o.pendingDeltas = true
		if p := o.prob; float64(p.deadCount) > rebuildDeadFraction*float64(len(p.vars)) {
			return o.rebuildCompacted()
		}
	}
	return nil
}

// rebuildCompacted rebuilds the problem from the mutated network (dropping
// tombstones and orphaned matrices) and marks every variable dirty so the
// next Reoptimize re-anchors the whole labeling from the warm start.
func (o *Optimizer) rebuildCompacted() error {
	o.invalidateProblem()
	p, err := o.ensureProblem()
	if err != nil {
		return err
	}
	for i := range p.vars {
		p.markDirty(i)
	}
	o.rebuilt = true
	return nil
}

// applyOp applies one delta op to the network and, when a problem is built,
// patches it.
func (o *Optimizer) applyOp(op netmodel.DeltaOp) error {
	switch op.Op {
	case netmodel.OpAddHost:
		if err := o.net.AddHost(op.Host.Host()); err != nil {
			return err
		}
		return o.patchAddHost(op.Host.ID)

	case netmodel.OpRemoveHost:
		if o.cs != nil && o.cs.References(op.ID) {
			return fmt.Errorf("core: host %q is referenced by the constraint set; update constraints first", op.ID)
		}
		h, ok := o.net.Host(op.ID)
		if !ok {
			return fmt.Errorf("%w: %q", netmodel.ErrUnknownHost, op.ID)
		}
		services := append([]netmodel.ServiceID(nil), h.Services...)
		neighbors := o.net.Neighbors(op.ID)
		if err := o.net.RemoveHost(op.ID); err != nil {
			return err
		}
		o.patchRemoveHost(op.ID, services, neighbors)
		return nil

	case netmodel.OpAddEdge:
		existed := o.net.Connected(op.A, op.B)
		if err := o.net.AddEdge(op.A, op.B); err != nil {
			return err
		}
		if existed {
			return nil // idempotent add: the MRF already has the factors
		}
		return o.patchAddEdge(op.A, op.B)

	case netmodel.OpRemoveEdge:
		existed := o.net.Connected(op.A, op.B)
		if err := o.net.RemoveEdge(op.A, op.B); err != nil {
			return err
		}
		if existed {
			o.patchRemoveEdge(op.A, op.B)
		}
		return nil

	case netmodel.OpUpdateHostServices:
		h, ok := o.net.Host(op.ID)
		if !ok {
			return fmt.Errorf("%w: %q", netmodel.ErrUnknownHost, op.ID)
		}
		structural := !sameServiceShape(h, op.Services, op.Choices)
		oldServices := append([]netmodel.ServiceID(nil), h.Services...)
		if err := o.net.UpdateHostServices(op.ID, op.Services, op.Choices, op.Preference); err != nil {
			return err
		}
		return o.patchUpdateHost(op.ID, oldServices, structural)
	}
	return fmt.Errorf("core: unknown delta op %q", op.Op)
}

// sameServiceShape reports whether the replacement service set keeps the
// exact services and candidate lists (in order) — in which case only unary
// costs (preferences) change and the MRF structure is untouched.
func sameServiceShape(h *netmodel.Host, services []netmodel.ServiceID, choices map[netmodel.ServiceID][]netmodel.ProductID) bool {
	if len(h.Services) != len(services) {
		return false
	}
	for i, s := range services {
		if h.Services[i] != s {
			return false
		}
		old, repl := h.Choices[s], choices[s]
		if len(old) != len(repl) {
			return false
		}
		for l := range old {
			if old[l] != repl[l] {
				return false
			}
		}
	}
	return true
}

// applyCostToVar re-adds the deployment-cost term to one variable's freshly
// set unary row.
func (o *Optimizer) applyCostToVar(p *problem, i int) error {
	if o.costModel == nil || o.costWeight == 0 {
		return nil
	}
	for l, cand := range p.candidates[i] {
		if err := p.graph.AddUnary(i, l, o.costWeight*o.costModel.Cost(cand)); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// patchAddHost appends MRF variables for a freshly added host (its links
// arrive as separate add_edge ops).
func (o *Optimizer) patchAddHost(hid netmodel.HostID) error {
	p := o.prob
	if p == nil {
		return nil
	}
	h, _ := o.net.Host(hid)
	for _, s := range h.Services {
		v := variable{host: hid, service: s}
		cands := append([]netmodel.ProductID(nil), h.Choices[s]...)
		node, err := p.graph.AddNode(len(cands))
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		p.index[v] = node
		p.vars = append(p.vars, v)
		p.candidates = append(p.candidates, cands)
		p.dead = append(p.dead, false)
		names := make([]string, len(cands))
		for l, c := range cands {
			names[l] = string(c)
		}
		if err := p.graph.SetLabelNames(node, names); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if err := p.setUnaryVar(node, o.net, o.cs, p.opts); err != nil {
			return err
		}
		if err := o.applyCostToVar(p, node); err != nil {
			return err
		}
		p.markDirty(node)
	}
	return p.addConstraintEdgesForHost(o.net, o.cs, hid)
}

// patchRemoveHost tombstones a removed host's variables: incident factors
// are dropped, unary rows zeroed (so the dead nodes contribute nothing to
// the energy, matching a fresh build of the mutated network) and the former
// neighbours marked dirty.
func (o *Optimizer) patchRemoveHost(hid netmodel.HostID, services []netmodel.ServiceID, neighbors []netmodel.HostID) {
	p := o.prob
	if p == nil {
		return
	}
	gone := make(map[int]bool, len(services))
	for _, s := range services {
		v := variable{host: hid, service: s}
		i, ok := p.index[v]
		if !ok {
			continue
		}
		gone[i] = true
		delete(p.index, v)
		delete(p.dirty, i)
		p.dead[i] = true
		p.deadCount++
		p.graph.SetUnaryRow(i, make([]float64, len(p.candidates[i]))) //nolint:errcheck // shape is ours
	}
	p.graph.FilterEdges(func(_, u, v int) bool { return !gone[u] && !gone[v] })
	for _, nb := range neighbors {
		o.markHostDirty(nb)
	}
}

// markHostDirty marks every live variable of a host dirty.
func (o *Optimizer) markHostDirty(hid netmodel.HostID) {
	p := o.prob
	h, ok := o.net.Host(hid)
	if !ok {
		return
	}
	for _, s := range h.Services {
		if i, ok := p.index[variable{host: hid, service: s}]; ok {
			p.markDirty(i)
		}
	}
}

// patchAddEdge adds the similarity factors of a new link (one per shared
// service).  Matrices are content-interned, so links over the same catalogue
// reuse the existing buffers.
func (o *Optimizer) patchAddEdge(a, b netmodel.HostID) error {
	p := o.prob
	if p == nil {
		return nil
	}
	for _, s := range o.net.SharedServices(a, b) {
		ia, oka := p.index[variable{host: a, service: s}]
		ib, okb := p.index[variable{host: b, service: s}]
		if !oka || !okb {
			continue
		}
		cost := similarityMatrix(p.candidates[ia], p.candidates[ib], o.sim, p.opts.PairwiseWeight)
		if _, err := p.graph.AddEdge(ia, ib, cost); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		p.markDirty(ia)
		p.markDirty(ib)
	}
	return nil
}

// patchRemoveEdge drops every inter-host factor between the two hosts.
func (o *Optimizer) patchRemoveEdge(a, b netmodel.HostID) {
	p := o.prob
	if p == nil {
		return
	}
	p.graph.FilterEdges(func(_, u, v int) bool {
		hu, hv := p.vars[u].host, p.vars[v].host
		drop := (hu == a && hv == b) || (hu == b && hv == a)
		return !drop
	})
	o.markHostDirty(a)
	o.markHostDirty(b)
}

// patchUpdateHost absorbs a service upgrade.  A shape-preserving update
// (same services and candidate lists) is a pure unary patch; a structural
// one tombstones the old variables and re-creates the host's nodes, factors
// and constraint edges.
func (o *Optimizer) patchUpdateHost(hid netmodel.HostID, oldServices []netmodel.ServiceID, structural bool) error {
	p := o.prob
	if p == nil {
		return nil
	}
	if !structural {
		h, _ := o.net.Host(hid)
		for _, s := range h.Services {
			i, ok := p.index[variable{host: hid, service: s}]
			if !ok {
				continue
			}
			if err := p.setUnaryVar(i, o.net, o.cs, p.opts); err != nil {
				return err
			}
			if err := o.applyCostToVar(p, i); err != nil {
				return err
			}
			p.markDirty(i)
		}
		return nil
	}
	neighbors := o.net.Neighbors(hid)
	o.patchRemoveHost(hid, oldServices, neighbors)
	if err := o.patchAddHost(hid); err != nil {
		return err
	}
	for _, nb := range neighbors {
		if err := o.patchAddEdge(hid, nb); err != nil {
			return err
		}
	}
	return nil
}

// ReoptimizeResult extends Result with the incremental engine's telemetry.
type ReoptimizeResult struct {
	Result
	// Incremental is false when the engine had no prior solution and fell
	// back to a cold Optimize.
	Incremental bool
	// Rebuilt reports that tombstone pressure forced a compacting rebuild
	// since the last solve.
	Rebuilt bool
	// DirtyNodes is the size of the initial dirty frontier handed to the
	// solver (dirty variables plus their one-hop neighbourhood); LiveNodes
	// the number of non-tombstoned variables.
	DirtyNodes int
	LiveNodes  int
}

// Reoptimize re-solves after ApplyDelta calls, warm-starting the configured
// solver from the previous solution with the accumulated dirty frontier so
// untouched regions converge in O(1) sweeps.  Without a prior solution it
// falls back to a cold Optimize.  On error (including cancellation) the
// previous solution is left intact — a cancelled churn step keeps serving
// the last good assignment.
func (o *Optimizer) Reoptimize(ctx context.Context) (ReoptimizeResult, error) {
	start := time.Now()
	if o.prob == nil || o.lastAssignment == nil {
		hadProblem := o.prob != nil
		res, err := o.Optimize(ctx)
		if err != nil {
			return ReoptimizeResult{}, err
		}
		out := ReoptimizeResult{Result: res, Rebuilt: !hadProblem}
		out.LiveNodes = len(o.prob.vars) - o.prob.deadCount
		return out, nil
	}
	p := o.prob
	live := len(p.vars) - p.deadCount
	rebuilt := o.rebuilt
	if len(p.dirty) == 0 {
		// No live variable's neighbourhood changed, so the previous labeling
		// restricted to the surviving variables is still the answer.  The
		// assignment may still need refreshing: removing a host with no live
		// neighbours leaves the dirty set empty while the served assignment
		// must drop the departed host and its energy contribution.
		assignment, energy := o.lastAssignment, o.lastEnergy
		if o.pendingDeltas {
			warm := p.encodeWarm(o.lastAssignment)
			refreshed, err := p.decode(warm)
			if err != nil {
				return ReoptimizeResult{}, err
			}
			assignment = refreshed
			energy = p.graph.MustEnergy(warm)
			o.lastAssignment = assignment
			o.lastEnergy = energy
			o.pendingDeltas = false
			o.rebuilt = false
		}
		out := ReoptimizeResult{
			Result: Result{
				Assignment: assignment,
				Energy:     energy,
				Converged:  true,
				Runtime:    time.Since(start),
				Nodes:      p.graph.NumNodes(),
				Edges:      p.graph.NumEdges(),
			},
			Incremental: true,
			Rebuilt:     rebuilt,
			LiveNodes:   live,
		}
		if o.cs != nil {
			out.ConstraintViolations = o.cs.Violations(assignment, o.net)
		}
		return out, nil
	}

	plainWarm := p.encodeWarm(o.lastAssignment)
	mask := p.dirtyMask()
	// Re-colour a wider region than the solver will sweep: basin quality
	// needs coverage, but the solver only has to refine what actually moved
	// (plus the raw dirty set) — the warm kernels grow the frontier on their
	// own wherever labels keep changing.
	warm := p.greedyRecolor(plainWarm, p.expandMask(mask, recolorHops))
	for i := range warm {
		if warm[i] != plainWarm[i] {
			mask[i] = true
		}
	}
	dirtyCount := 0
	for _, d := range mask {
		if d {
			dirtyCount++
		}
	}
	// The warm solve starts inside (or next to) the target basin, so it
	// needs far fewer sweeps than a cold solve and a shorter plateau before
	// declaring convergence.
	name := o.opts.Solver.String()
	if !solve.Registered(name) {
		return ReoptimizeResult{}, fmt.Errorf("core: unknown solver %v", o.opts.Solver)
	}
	iters := o.opts.MaxIterations
	if iters > reoptimizeMaxIterations {
		iters = reoptimizeMaxIterations
	}
	sol, err := solve.Solve(ctx, name, p.graph, solve.Options{
		MaxIterations: iters,
		Patience:      reoptimizePatience,
		Workers:       o.opts.Workers,
		Seed:          o.opts.Seed,
		InitialLabels: warm,
		DirtyMask:     mask,
		Checkpoint:    o.opts.Checkpoint,
	})
	if err != nil {
		return ReoptimizeResult{}, err
	}
	if !o.opts.DisablePolish {
		// Dirty-restricted local polish: the warm ICM kernel descends from
		// the solver's labeling over the same frontier, so the polish also
		// costs O(dirty) instead of a full sweep.
		polished, perr := solve.Run(ctx, p.graph, solve.Options{
			MaxIterations: 10,
			InitialLabels: sol.Labels,
			DirtyMask:     mask,
			Checkpoint:    o.opts.Checkpoint,
		}, &icm.Kernel{})
		if perr != nil {
			return ReoptimizeResult{}, perr
		}
		if polished.Energy < sol.Energy {
			sol.Labels = polished.Labels
			sol.Energy = polished.Energy
		}
	}
	assignment, err := p.decode(sol.Labels)
	if err != nil {
		return ReoptimizeResult{}, err
	}
	res := ReoptimizeResult{
		Result: Result{
			Assignment:    assignment,
			Energy:        sol.Energy,
			LowerBound:    sol.LowerBound,
			Iterations:    sol.Iterations,
			Converged:     sol.Converged,
			Runtime:       time.Since(start),
			Nodes:         p.graph.NumNodes(),
			Edges:         p.graph.NumEdges(),
			EnergyHistory: sol.EnergyHistory,
		},
		Incremental: true,
		Rebuilt:     rebuilt,
		DirtyNodes:  dirtyCount,
		LiveNodes:   live,
	}
	if o.cs != nil {
		res.ConstraintViolations = o.cs.Violations(assignment, o.net)
	}
	o.lastAssignment = assignment
	o.lastEnergy = sol.Energy
	p.clearDirty()
	o.rebuilt = false
	o.pendingDeltas = false
	return res, nil
}

// LastAssignment returns the most recent solution (nil before the first
// solve).  Watch-mode callers use it to keep serving the previous assignment
// when a churn step fails or is cancelled.
func (o *Optimizer) LastAssignment() *netmodel.Assignment { return o.lastAssignment }

// Snapshot returns a deep copy of the most recent solution and its energy.
// ok is false before the first successful solve.  The copy shares no state
// with the optimiser, so a serving layer can hand it to concurrent readers
// while the next ApplyDelta/Reoptimize cycle runs — the Optimizer itself is
// single-writer and callers must still serialise the mutating calls.
func (o *Optimizer) Snapshot() (a *netmodel.Assignment, energy float64, ok bool) {
	if o.lastAssignment == nil {
		return nil, 0, false
	}
	return o.lastAssignment.Clone(), o.lastEnergy, true
}

// RestoreAssignment seeds the optimiser with a previously computed solution —
// the boot-replay counterpart of Snapshot.  A serving layer recovering a
// session from a WAL snapshot installs the recovered assignment here instead
// of re-running the cold solve: the next ApplyDelta/Reoptimize cycle
// warm-starts from it exactly as if this process had produced it, and until
// then LastAssignment/Snapshot serve it unchanged.  The assignment is deep
// copied; callers should pass the energy journaled alongside it.
func (o *Optimizer) RestoreAssignment(a *netmodel.Assignment, energy float64) {
	o.lastAssignment = a.Clone()
	o.lastEnergy = energy
}

// greedyRecolor rebuilds the masked region of a warm labeling the way the
// cold pipeline's greedy-colouring warm start would: masked nodes are
// treated as unassigned and re-coloured in decreasing-degree order against
// the frozen clean boundary, each picking the label with the smallest unary
// plus pairwise cost toward already-labeled neighbours.  Warm-starting the
// solver from the previous labels alone tends to stay in the previous
// solution's basin; re-colouring the dirty region re-enters the basin the
// cold solve would find, which is what keeps incremental energies within a
// whisker of a full re-solve.  The better of the plain and re-coloured warm
// starts (on the current energy) is returned.
func (p *problem) greedyRecolor(warm []int, mask []bool) []int {
	g := p.graph
	order := make([]int, 0, len(warm))
	for i, m := range mask {
		if m {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	recolored := append([]int(nil), warm...)
	assigned := make([]bool, len(warm))
	for i, m := range mask {
		assigned[i] = !m // the clean boundary counts as already assigned
	}
	for _, i := range order {
		row := g.UnaryView(i)
		best, bestCost := recolored[i], math.Inf(1)
		for l := 0; l < g.NumLabels(i); l++ {
			cost := row[l]
			for _, e := range g.IncidentEdges(i) {
				u, v := g.EdgeEndpoints(e)
				if u == i {
					if assigned[v] {
						cost += g.PairwiseCost(e, l, recolored[v])
					}
				} else if assigned[u] {
					cost += g.PairwiseCost(e, recolored[u], l)
				}
			}
			if cost < bestCost {
				best, bestCost = l, cost
			}
		}
		recolored[i] = best
		assigned[i] = true
	}
	if g.MustEnergy(recolored) < g.MustEnergy(warm) {
		return recolored
	}
	return warm
}

// recolorHops is the BFS expansion of the dirty set that the greedy
// re-colouring covers.  It is wider than the solver's initial mask because
// basin quality needs coverage while sweep cost needs the mask tight; the
// re-colouring is a single O(region · degree · labels) pass, so the wide
// region is cheap.
const recolorHops = 2

// dirtyMask converts the dirty set into a solver mask (dead nodes
// excluded).  The patcher already marks the neighbourhood of every change
// (removed hosts mark their former neighbours, new edges both endpoints), so
// the raw set is itself a one-hop frontier around the physical change.
func (p *problem) dirtyMask() []bool {
	mask := make([]bool, p.graph.NumNodes())
	for i := range p.dirty {
		if !p.dead[i] {
			mask[i] = true
		}
	}
	return mask
}

// expandMask returns a copy of the mask grown by `hops` BFS levels over the
// MRF adjacency (dead nodes excluded).
func (p *problem) expandMask(mask []bool, hops int) []bool {
	out := append([]bool(nil), mask...)
	frontier := make([]int, 0, len(p.dirty))
	for i, m := range out {
		if m {
			frontier = append(frontier, i)
		}
	}
	for hop := 0; hop < hops; hop++ {
		var next []int
		for _, i := range frontier {
			for _, e := range p.graph.IncidentEdges(i) {
				u, v := p.graph.EdgeEndpoints(e)
				for _, j := range [2]int{u, v} {
					if !out[j] && !p.dead[j] {
						out[j] = true
						next = append(next, j)
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// Package core implements the paper's primary contribution: computing an
// optimal diversification α̂ (and constrained optima α̂_C) for a network by
// encoding the assignment problem as a discrete Markov Random Field
// (Section V) and minimising it with TRW-S or one of the baseline solvers.
//
// The MRF has one node per (host, service) pair whose label space is the set
// of candidate products for that service on that host.  Unary costs encode
// product preferences, pinned products and constraint penalties (Eq. 2);
// pairwise costs on every network link encode the vulnerability similarity
// between the products chosen on the two endpoints (Eq. 3); configuration
// constraints between two services of the same host become intra-host
// pairwise factors.
package core

import (
	"errors"
	"fmt"

	"netdiversity/internal/mrf"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// variable identifies one MRF node: a (host, service) pair.
type variable struct {
	host    netmodel.HostID
	service netmodel.ServiceID
}

// problem is the MRF encoding of a diversification instance, together with
// the bookkeeping needed to decode a labeling back into an Assignment.  A
// problem is kept alive on the Optimizer across solves and patched in place
// by ApplyDelta, so it also tracks tombstoned variables (removed hosts keep
// their — zeroed, edgeless — MRF nodes until a threshold rebuild compacts
// the graph) and the dirty set consumed by Reoptimize.
type problem struct {
	graph *mrf.Graph
	vars  []variable
	index map[variable]int
	// candidates[i] are the product choices of variable i, in label order.
	candidates [][]netmodel.ProductID
	// opts are the options the problem was built with (needed to patch unary
	// rows after a delta).
	opts Options
	// dead[i] marks tombstoned variables; deadCount is their number.
	dead      []bool
	deadCount int
	// dirty is the set of live variables whose neighbourhood changed since
	// the last solve.
	dirty map[int]bool
}

// markDirty records a live variable as touched by a delta.
func (p *problem) markDirty(i int) {
	if !p.dead[i] {
		p.dirty[i] = true
	}
}

// clearDirty empties the dirty set after a solve has absorbed it.
func (p *problem) clearDirty() {
	p.dirty = make(map[int]bool)
}

// buildProblem constructs the MRF for the network, similarity table and
// constraint set under the given options.
func buildProblem(net *netmodel.Network, sim *vulnsim.SimilarityTable, cs *netmodel.ConstraintSet, opts Options) (*problem, error) {
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid network: %w", err)
	}
	if cs != nil {
		if err := cs.Validate(net); err != nil {
			return nil, fmt.Errorf("core: invalid constraints: %w", err)
		}
	}

	p := &problem{index: make(map[variable]int), opts: opts, dirty: make(map[int]bool)}
	var labelCounts []int
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		for _, s := range h.Services {
			v := variable{host: hid, service: s}
			p.index[v] = len(p.vars)
			p.vars = append(p.vars, v)
			cands := append([]netmodel.ProductID(nil), h.Choices[s]...)
			p.candidates = append(p.candidates, cands)
			labelCounts = append(labelCounts, len(cands))
		}
	}
	p.dead = make([]bool, len(p.vars))
	g, err := mrf.NewGraph(labelCounts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p.graph = g
	for i, cands := range p.candidates {
		names := make([]string, len(cands))
		for l, c := range cands {
			names[l] = string(c)
		}
		if err := g.SetLabelNames(i, names); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	if err := p.addUnaryCosts(net, cs, opts); err != nil {
		return nil, err
	}
	if err := p.addSimilarityEdges(net, sim, opts); err != nil {
		return nil, err
	}
	if err := p.addConstraintEdges(net, cs); err != nil {
		return nil, err
	}
	return p, nil
}

// addUnaryCosts fills in φ: the uniform constant Pr_const, optional host
// preferences, legacy-host pinning (first candidate) and pinned products.
func (p *problem) addUnaryCosts(net *netmodel.Network, cs *netmodel.ConstraintSet, opts Options) error {
	for i := range p.vars {
		if err := p.setUnaryVar(i, net, cs, opts); err != nil {
			return err
		}
	}
	return nil
}

// setUnaryVar (re)computes the unary cost row of one variable from the
// network's current preferences, legacy pinning and fixed products.  It is
// the unit shared by the full build and the delta patcher.
func (p *problem) setUnaryVar(i int, net *netmodel.Network, cs *netmodel.ConstraintSet, opts Options) error {
	v := p.vars[i]
	h, ok := net.Host(v.host)
	if !ok {
		return fmt.Errorf("core: variable references unknown host %q", v.host)
	}
	cands := p.candidates[i]
	prefs := h.Preference[v.service]
	fixedProduct, fixed := netmodel.ProductID(""), false
	if cs != nil {
		fixedProduct, fixed = cs.Fixed(v.host, v.service)
	}
	if !fixed && h.Legacy {
		// Legacy hosts cannot be diversified: they keep their first
		// (currently installed) candidate.
		fixedProduct, fixed = cands[0], true
	}
	for l, cand := range cands {
		cost := opts.UnaryConstant
		if prefs != nil {
			if pr, ok := prefs[cand]; ok {
				// Higher preference -> lower cost.  The constant keeps
				// the unary term on the same scale as the default.
				cost = opts.UnaryConstant * (1 - clamp01(pr))
			}
		}
		if fixed && cand != fixedProduct {
			cost = mrf.HardPenalty
		}
		if err := p.graph.SetUnary(i, l, cost); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if fixed {
		found := false
		for _, cand := range cands {
			if cand == fixedProduct {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: host %q service %q pinned to %q which is not a candidate",
				v.host, v.service, fixedProduct)
		}
	}
	return nil
}

// addSimilarityEdges adds the pairwise similarity factor of Eq. 3 for every
// network link and every service shared by its endpoints.  Edges whose
// endpoints have identical candidate lists share one cost matrix.
func (p *problem) addSimilarityEdges(net *netmodel.Network, sim *vulnsim.SimilarityTable, opts Options) error {
	if sim == nil {
		return errors.New("core: nil similarity table")
	}
	cache := make(map[uint64][]simCacheEntry)
	for _, link := range net.Links() {
		for _, s := range net.SharedServices(link.A, link.B) {
			ia, oka := p.index[variable{host: link.A, service: s}]
			ib, okb := p.index[variable{host: link.B, service: s}]
			if !oka || !okb {
				continue
			}
			candsA, candsB := p.candidates[ia], p.candidates[ib]
			key := cacheKey(candsA, candsB)
			var cost [][]float64
			for _, e := range cache[key] {
				if equalCandidates(e.a, candsA) && equalCandidates(e.b, candsB) {
					cost = e.cost
					break
				}
			}
			if cost == nil {
				cost = similarityMatrix(candsA, candsB, sim, opts.PairwiseWeight)
				cache[key] = append(cache[key], simCacheEntry{a: candsA, b: candsB, cost: cost})
			}
			if _, err := p.graph.AddEdgeShared(ia, ib, cost); err != nil {
				return fmt.Errorf("core: %w", err)
			}
		}
	}
	return nil
}

// simCacheEntry buckets a cached similarity matrix under its candidate-list
// hash; entries in one bucket are disambiguated by list equality, so a
// 64-bit hash collision can never alias two different matrices.
type simCacheEntry struct {
	a, b []netmodel.ProductID
	cost [][]float64
}

func equalCandidates(a, b []netmodel.ProductID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// similarityMatrix builds the pairwise similarity cost matrix of Eq. 3 for
// two candidate lists.
func similarityMatrix(candsA, candsB []netmodel.ProductID, sim *vulnsim.SimilarityTable, weight float64) [][]float64 {
	cost := make([][]float64, len(candsA))
	for x, pa := range candsA {
		cost[x] = make([]float64, len(candsB))
		for y, pb := range candsB {
			cost[x][y] = weight * sim.Sim(string(pa), string(pb))
		}
	}
	return cost
}

// addConstraintEdges encodes every require/forbid constraint as an intra-host
// pairwise factor with HardPenalty on the violating label pairs.
func (p *problem) addConstraintEdges(net *netmodel.Network, cs *netmodel.ConstraintSet) error {
	if cs == nil {
		return nil
	}
	for _, c := range cs.Constraints() {
		hosts := net.Hosts()
		if !c.Global() {
			hosts = []netmodel.HostID{c.Host}
		}
		for _, hid := range hosts {
			if err := p.addConstraintEdgeOnHost(net, c, hid); err != nil {
				return err
			}
		}
	}
	return nil
}

// addConstraintEdgeOnHost adds the pairwise factor of one constraint on one
// host (a no-op when the host does not provide both services).
func (p *problem) addConstraintEdgeOnHost(net *netmodel.Network, c netmodel.Constraint, hid netmodel.HostID) error {
	h, ok := net.Host(hid)
	if !ok || !h.HasService(c.ServiceM) || !h.HasService(c.ServiceN) {
		return nil
	}
	im, okm := p.index[variable{host: hid, service: c.ServiceM}]
	in, okn := p.index[variable{host: hid, service: c.ServiceN}]
	if !okm || !okn {
		return nil
	}
	candsM, candsN := p.candidates[im], p.candidates[in]
	cost := make([][]float64, len(candsM))
	for x, pm := range candsM {
		cost[x] = make([]float64, len(candsN))
		if pm != c.ProductJ {
			continue
		}
		for y, pn := range candsN {
			violated := false
			if c.Mode == netmodel.Require && pn != c.ProductK {
				violated = true
			}
			if c.Mode == netmodel.Forbid && pn == c.ProductK {
				violated = true
			}
			if violated {
				cost[x][y] = mrf.HardPenalty
			}
		}
	}
	if _, err := p.graph.AddEdge(im, in, cost); err != nil {
		return fmt.Errorf("core: constraint %s: %w", c, err)
	}
	return nil
}

// addConstraintEdgesForHost adds every constraint factor that applies to one
// host — the host-scoped counterpart of addConstraintEdges used when the
// delta patcher (re)creates a host's variables.
func (p *problem) addConstraintEdgesForHost(net *netmodel.Network, cs *netmodel.ConstraintSet, hid netmodel.HostID) error {
	if cs == nil {
		return nil
	}
	for _, c := range cs.Constraints() {
		if !c.Global() && c.Host != hid {
			continue
		}
		if err := p.addConstraintEdgeOnHost(net, c, hid); err != nil {
			return err
		}
	}
	return nil
}

// decode converts an MRF labeling into an Assignment.  Tombstoned variables
// (removed hosts awaiting compaction) are skipped.
func (p *problem) decode(labels []int) (*netmodel.Assignment, error) {
	if len(labels) != len(p.vars) {
		return nil, fmt.Errorf("core: labeling has %d entries, want %d", len(labels), len(p.vars))
	}
	a := netmodel.NewAssignment()
	for i, v := range p.vars {
		if p.dead[i] {
			continue
		}
		l := labels[i]
		if l < 0 || l >= len(p.candidates[i]) {
			return nil, fmt.Errorf("core: label %d out of range for %s/%s", l, v.host, v.service)
		}
		a.Set(v.host, v.service, p.candidates[i][l])
	}
	return a, nil
}

// encode converts an Assignment into an MRF labeling (used to evaluate the
// energy of baseline assignments on the same objective).  Tombstoned
// variables take label 0; their unary row is zeroed and they have no edges,
// so the choice does not affect the energy.
func (p *problem) encode(a *netmodel.Assignment) ([]int, error) {
	labels := make([]int, len(p.vars))
	for i, v := range p.vars {
		if p.dead[i] {
			continue
		}
		prod, ok := a.Get(v.host, v.service)
		if !ok {
			return nil, fmt.Errorf("core: assignment misses %s/%s", v.host, v.service)
		}
		found := -1
		for l, cand := range p.candidates[i] {
			if cand == prod {
				found = l
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("core: assignment uses %q which is not a candidate of %s/%s",
				prod, v.host, v.service)
		}
		labels[i] = found
	}
	return labels, nil
}

// encodeWarm converts a (possibly stale) assignment into a warm-start
// labeling: variables the assignment covers take their recorded label, new
// variables fall back to their greedy-unary label.  Unlike encode it never
// fails — a warm start only has to be a valid labeling, not a complete one.
func (p *problem) encodeWarm(a *netmodel.Assignment) []int {
	labels := make([]int, len(p.vars))
	for i, v := range p.vars {
		if p.dead[i] {
			continue
		}
		if prod, ok := a.Get(v.host, v.service); ok {
			if l := candidateIndex(p.candidates[i], prod); l >= 0 {
				labels[i] = l
				continue
			}
		}
		row := p.graph.UnaryView(i)
		best := 0
		for l := 1; l < len(row); l++ {
			if row[l] < row[best] {
				best = l
			}
		}
		labels[i] = best
	}
	return labels
}

func candidateIndex(cands []netmodel.ProductID, p netmodel.ProductID) int {
	for l, c := range cands {
		if c == p {
			return l
		}
	}
	return -1
}

// FNV-1a parameters (hash/fnv is avoided on this per-edge hot path: hashing
// inline keeps the key computation allocation-free, where the previous
// string-concatenation key allocated per edge).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// cacheKey hashes two candidate lists into the pairwise-matrix cache key.
// Product names are separated by a terminator byte so list boundaries cannot
// alias ("ab","c" vs "a","bc").
func cacheKey(a, b []netmodel.ProductID) uint64 {
	h := uint64(fnvOffset64)
	for _, p := range a {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime64
		}
		h ^= 0xff
		h *= fnvPrime64
	}
	h ^= 0xfe
	h *= fnvPrime64
	for _, p := range b {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime64
		}
		h ^= 0xff
		h *= fnvPrime64
	}
	return h
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

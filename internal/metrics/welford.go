package metrics

import "math"

// Welford is a streaming mean/variance accumulator using Welford's online
// algorithm, with the parallel (Chan et al.) merge rule so per-worker
// accumulators of a batched simulation can be combined without keeping the
// raw samples.  The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into this one.  Merging preserves count,
// mean and variance exactly up to floating-point rounding, independent of
// how the samples were split between the two sides.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Count returns the number of samples folded in.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

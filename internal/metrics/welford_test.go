package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func naiveStats(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*7 + 100
		w.Add(xs[i])
	}
	mean, variance := naiveStats(xs)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v, naive %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-6 {
		t.Errorf("variance %v, naive %v", w.Variance(), variance)
	}
	if w.Count() != int64(len(xs)) {
		t.Errorf("count %d, want %d", w.Count(), len(xs))
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 4001)
	var whole Welford
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 13
		whole.Add(xs[i])
	}
	// Split into uneven partitions (like a strided worker pool) and merge.
	parts := make([]Welford, 5)
	for i, x := range xs {
		parts[i%len(parts)].Add(x)
	}
	var merged Welford
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), whole.Count())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("merged mean %v, sequential %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Variance()-whole.Variance()) > 1e-6 {
		t.Errorf("merged variance %v, sequential %v", merged.Variance(), whole.Variance())
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Error("single sample: mean 5, variance 0")
	}
	var empty Welford
	w.Merge(empty)
	if w.Count() != 1 || w.Mean() != 5 {
		t.Error("merging an empty accumulator should be a no-op")
	}
	empty.Merge(w)
	if empty.Count() != 1 || empty.Mean() != 5 {
		t.Error("merging into an empty accumulator should copy")
	}
}

// Package metrics implements the three network-diversity security metrics of
// Zhang et al. ("Network diversity: a security metric for evaluating the
// resilience of networks against zero-day attacks", IEEE TIFS 2016), which
// the paper builds on for its BN-based metric (Section VI) and cites as the
// standard way to quantify how diverse a deployed configuration is:
//
//   - d1 — richness/Shannon-effective-number diversity: the effective number
//     of distinct products in the network divided by the number of hosts
//     (instances), averaged over services.
//   - d2 — least attacking effort: the minimum number of *distinct* products
//     an attacker must be able to exploit on any attack path from an entry
//     host to a target host (normalised by path length).
//   - d3 — average attacking effort: the expected number of distinct products
//     that must be exploited to compromise the target, weighted by how likely
//     each attack path is under the similarity-aware infection model.
//
// These metrics complement the paper's d_bn: they need no probabilistic
// inference, so they scale to very large networks, and they expose *why* an
// assignment is fragile (few distinct products vs. a single weak path).
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// ErrNilInput is returned when a metric receives nil inputs.
var ErrNilInput = errors.New("metrics: network, assignment and similarity table must not be nil")

// EffectiveRichness reports the d1 metric for one service and aggregated.
type EffectiveRichness struct {
	// PerService maps every service to its effective number of products
	// (exp of the Shannon entropy of the product distribution) divided by
	// the number of hosts providing the service.
	PerService map[netmodel.ServiceID]float64
	// EffectiveNumbers maps every service to the raw effective number of
	// products (before normalisation).
	EffectiveNumbers map[netmodel.ServiceID]float64
	// Overall is the mean of PerService over all services.
	Overall float64
}

// Richness computes the d1 metric: for each service, the Shannon-effective
// number of products used across the network divided by the number of
// product instances, averaged over services.  A value of 1 means every host
// runs a distinct product; 1/n means a mono-culture over n hosts.
func Richness(net *netmodel.Network, a *netmodel.Assignment) (EffectiveRichness, error) {
	if net == nil || a == nil {
		return EffectiveRichness{}, ErrNilInput
	}
	if err := a.ValidateFor(net); err != nil {
		return EffectiveRichness{}, fmt.Errorf("metrics: %w", err)
	}
	counts := make(map[netmodel.ServiceID]map[netmodel.ProductID]int)
	instances := make(map[netmodel.ServiceID]int)
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		for _, s := range h.Services {
			p, ok := a.Get(hid, s)
			if !ok {
				continue
			}
			if counts[s] == nil {
				counts[s] = make(map[netmodel.ProductID]int)
			}
			counts[s][p]++
			instances[s]++
		}
	}
	out := EffectiveRichness{
		PerService:       make(map[netmodel.ServiceID]float64, len(counts)),
		EffectiveNumbers: make(map[netmodel.ServiceID]float64, len(counts)),
	}
	// Sorted iteration keeps the float summation order (and therefore the
	// last-ULP result) identical across runs, so benchmark reports comparing
	// the metric byte-for-byte stay deterministic.
	services := make([]netmodel.ServiceID, 0, len(counts))
	for s := range counts {
		services = append(services, s)
	}
	sort.Slice(services, func(i, j int) bool { return services[i] < services[j] })
	total := 0.0
	for _, s := range services {
		byProduct := counts[s]
		products := make([]netmodel.ProductID, 0, len(byProduct))
		for p := range byProduct {
			products = append(products, p)
		}
		sort.Slice(products, func(i, j int) bool { return products[i] < products[j] })
		n := float64(instances[s])
		entropy := 0.0
		for _, p := range products {
			f := float64(byProduct[p]) / n
			entropy -= f * math.Log(f)
		}
		effective := math.Exp(entropy)
		out.EffectiveNumbers[s] = effective
		out.PerService[s] = effective / n
		total += out.PerService[s]
	}
	if len(counts) > 0 {
		out.Overall = total / float64(len(counts))
	}
	return out, nil
}

// PathEffort describes one attack path and the attacking effort along it.
type PathEffort struct {
	// Hosts is the path from entry to target (inclusive).
	Hosts []netmodel.HostID
	// DistinctProducts is the number of distinct products the attacker must
	// be able to exploit along the path (counting, per step, the product
	// actually attacked on the destination host).
	DistinctProducts int
	// Likelihood is the product of per-step success probabilities under the
	// similarity-aware infection model (used to weight d3).
	Likelihood float64
}

// EffortConfig parameterises the attack-effort metrics.
type EffortConfig struct {
	// Entry and Target bound the attack paths considered.
	Entry  netmodel.HostID
	Target netmodel.HostID
	// PAvg is the base zero-day propagation rate of the infection model
	// (default 0.2), used only to weight paths for d3.
	PAvg float64
	// ExploitServices restricts the services the attacker can exploit
	// (nil = all).
	ExploitServices []netmodel.ServiceID
	// MaxPaths bounds the number of shortest paths enumerated (default 64).
	MaxPaths int
	// MaxExtraHops allows paths up to shortest+MaxExtraHops long
	// (default 1).
	MaxExtraHops int
}

func (c EffortConfig) withDefaults() EffortConfig {
	if c.PAvg <= 0 || c.PAvg >= 1 {
		c.PAvg = 0.2
	}
	if c.MaxPaths <= 0 {
		c.MaxPaths = 64
	}
	if c.MaxExtraHops < 0 {
		c.MaxExtraHops = 1
	}
	return c
}

func (c EffortConfig) allowsService(s netmodel.ServiceID) bool {
	if len(c.ExploitServices) == 0 {
		return true
	}
	for _, e := range c.ExploitServices {
		if e == s {
			return true
		}
	}
	return false
}

// EffortResult reports the d2 and d3 metrics.
type EffortResult struct {
	// LeastEffort is d2: the minimum number of distinct products on any
	// enumerated attack path, divided by the path length (so that longer
	// paths with the same product mix score lower diversity per step).
	LeastEffort float64
	// LeastEffortProducts is the raw distinct-product count of that path.
	LeastEffortProducts int
	// AverageEffort is d3: the likelihood-weighted mean number of distinct
	// products over all enumerated attack paths.
	AverageEffort float64
	// Paths are the enumerated attack paths, most likely first.
	Paths []PathEffort
}

// Effort computes the d2/d3 attacking-effort metrics for an assignment.
func Effort(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable, cfg EffortConfig) (EffortResult, error) {
	if net == nil || a == nil || sim == nil {
		return EffortResult{}, ErrNilInput
	}
	if err := a.ValidateFor(net); err != nil {
		return EffortResult{}, fmt.Errorf("metrics: %w", err)
	}
	cfg = cfg.withDefaults()
	if _, ok := net.Host(cfg.Entry); !ok {
		return EffortResult{}, fmt.Errorf("metrics: unknown entry host %q", cfg.Entry)
	}
	if _, ok := net.Host(cfg.Target); !ok {
		return EffortResult{}, fmt.Errorf("metrics: unknown target host %q", cfg.Target)
	}
	dist := net.ShortestPathLengths(cfg.Entry)
	shortest, ok := dist[cfg.Target]
	if !ok {
		return EffortResult{}, fmt.Errorf("metrics: target %q not reachable from %q", cfg.Target, cfg.Entry)
	}
	maxLen := shortest + cfg.MaxExtraHops

	paths := enumeratePaths(net, cfg.Entry, cfg.Target, maxLen, cfg.MaxPaths)
	if len(paths) == 0 {
		return EffortResult{}, fmt.Errorf("metrics: no attack path of length <= %d found", maxLen)
	}

	var out EffortResult
	out.LeastEffort = math.Inf(1)
	sumWeighted, sumWeights := 0.0, 0.0
	for _, hosts := range paths {
		pe := pathEffort(net, a, sim, cfg, hosts)
		out.Paths = append(out.Paths, pe)
		steps := float64(len(hosts) - 1)
		normalised := float64(pe.DistinctProducts) / steps
		if normalised < out.LeastEffort {
			out.LeastEffort = normalised
			out.LeastEffortProducts = pe.DistinctProducts
		}
		sumWeighted += pe.Likelihood * float64(pe.DistinctProducts)
		sumWeights += pe.Likelihood
	}
	if sumWeights > 0 {
		out.AverageEffort = sumWeighted / sumWeights
	}
	sort.Slice(out.Paths, func(i, j int) bool { return out.Paths[i].Likelihood > out.Paths[j].Likelihood })
	return out, nil
}

// pathEffort computes the distinct-product count and likelihood of one path.
func pathEffort(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable, cfg EffortConfig, hosts []netmodel.HostID) PathEffort {
	pe := PathEffort{Hosts: hosts, Likelihood: 1}
	distinct := make(map[netmodel.ProductID]struct{})
	for i := 0; i+1 < len(hosts); i++ {
		src, dst := hosts[i], hosts[i+1]
		// The attacker picks the service with the highest success
		// probability; the exploited product is the destination's product
		// for that service.
		bestProb := 0.0
		var bestProduct netmodel.ProductID
		for _, s := range net.SharedServices(src, dst) {
			if !cfg.allowsService(s) {
				continue
			}
			pu, oku := a.Get(src, s)
			pv, okv := a.Get(dst, s)
			if !oku || !okv {
				continue
			}
			prob := cfg.PAvg + (1-cfg.PAvg)*sim.Sim(string(pu), string(pv))
			if prob > bestProb {
				bestProb = prob
				bestProduct = pv
			}
		}
		if bestProb == 0 {
			pe.Likelihood = 0
			continue
		}
		pe.Likelihood *= bestProb
		distinct[bestProduct] = struct{}{}
	}
	pe.DistinctProducts = len(distinct)
	return pe
}

// enumeratePaths lists simple paths from entry to target with at most maxLen
// edges, up to maxPaths paths, shortest first (DFS with depth bound).
func enumeratePaths(net *netmodel.Network, entry, target netmodel.HostID, maxLen, maxPaths int) [][]netmodel.HostID {
	var out [][]netmodel.HostID
	visited := map[netmodel.HostID]bool{entry: true}
	path := []netmodel.HostID{entry}
	var dfs func(cur netmodel.HostID)
	dfs = func(cur netmodel.HostID) {
		if len(out) >= maxPaths {
			return
		}
		if cur == target {
			cp := make([]netmodel.HostID, len(path))
			copy(cp, path)
			out = append(out, cp)
			return
		}
		if len(path)-1 >= maxLen {
			return
		}
		for _, nb := range net.Neighbors(cur) {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			path = append(path, nb)
			dfs(nb)
			path = path[:len(path)-1]
			visited[nb] = false
		}
	}
	dfs(entry)
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	if len(out) > maxPaths {
		out = out[:maxPaths]
	}
	return out
}

// Summary bundles all three Zhang-style metrics for one assignment, as
// reported by the metrics experiment and cmd/divsim.
type Summary struct {
	Richness      EffectiveRichness
	LeastEffort   float64
	AverageEffort float64
}

// Evaluate computes d1, d2 and d3 in one call.
func Evaluate(net *netmodel.Network, a *netmodel.Assignment, sim *vulnsim.SimilarityTable, cfg EffortConfig) (Summary, error) {
	rich, err := Richness(net, a)
	if err != nil {
		return Summary{}, err
	}
	effort, err := Effort(net, a, sim, cfg)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Richness:      rich,
		LeastEffort:   effort.LeastEffort,
		AverageEffort: effort.AverageEffort,
	}, nil
}

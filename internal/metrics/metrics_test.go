package metrics

import (
	"math"
	"testing"

	"netdiversity/internal/baseline"
	"netdiversity/internal/casestudy"
	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// smallSetup builds a 4-host line with one OS service and three candidate
// products.
func smallSetup(t *testing.T) (*netmodel.Network, *vulnsim.SimilarityTable) {
	t.Helper()
	net := netmodel.New()
	ids := []netmodel.HostID{"a", "b", "c", "d"}
	for _, id := range ids {
		h := &netmodel.Host{
			ID:       id,
			Services: []netmodel.ServiceID{"os"},
			Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"p1", "p2", "p3"}},
		}
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := net.AddLink(ids[i], ids[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	sim := vulnsim.NewSimilarityTable([]string{"p1", "p2", "p3"})
	_ = sim.Set("p1", "p2", 0.5, 5)
	_ = sim.Set("p1", "p3", 0.1, 1)
	_ = sim.Set("p2", "p3", 0.2, 2)
	return net, sim
}

func assign(products ...netmodel.ProductID) *netmodel.Assignment {
	a := netmodel.NewAssignment()
	ids := []netmodel.HostID{"a", "b", "c", "d"}
	for i, p := range products {
		a.Set(ids[i], "os", p)
	}
	return a
}

func TestRichness(t *testing.T) {
	net, _ := smallSetup(t)

	mono := assign("p1", "p1", "p1", "p1")
	r, err := Richness(net, mono)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PerService["os"]-0.25) > 1e-9 {
		t.Errorf("mono richness = %v, want 0.25 (1 product over 4 hosts)", r.PerService["os"])
	}

	diverse := assign("p1", "p2", "p3", "p1")
	r, err = Richness(net, diverse)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerService["os"] <= 0.25 || r.PerService["os"] > 1 {
		t.Errorf("diverse richness = %v, want in (0.25, 1]", r.PerService["os"])
	}
	if r.Overall != r.PerService["os"] {
		t.Error("single-service overall should equal the per-service value")
	}

	perfect := assign("p1", "p2", "p3", "p1")
	rp, _ := Richness(net, perfect)
	monoR, _ := Richness(net, mono)
	if rp.Overall <= monoR.Overall {
		t.Error("diversified assignment should have higher richness than mono")
	}

	if _, err := Richness(nil, mono); err == nil {
		t.Error("nil network should be rejected")
	}
	if _, err := Richness(net, netmodel.NewAssignment()); err == nil {
		t.Error("incomplete assignment should be rejected")
	}
}

func TestEffortChain(t *testing.T) {
	net, sim := smallSetup(t)
	cfg := EffortConfig{Entry: "a", Target: "d", PAvg: 0.2}

	mono := assign("p1", "p1", "p1", "p1")
	resMono, err := Effort(net, mono, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only one simple path a-b-c-d; every step exploits the same product.
	if resMono.LeastEffortProducts != 1 {
		t.Errorf("mono least-effort products = %d, want 1", resMono.LeastEffortProducts)
	}
	if math.Abs(resMono.LeastEffort-1.0/3.0) > 1e-9 {
		t.Errorf("mono d2 = %v, want 1/3", resMono.LeastEffort)
	}
	if math.Abs(resMono.AverageEffort-1) > 1e-9 {
		t.Errorf("mono d3 = %v, want 1", resMono.AverageEffort)
	}

	diverse := assign("p1", "p2", "p3", "p1")
	resDiverse, err := Effort(net, diverse, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resDiverse.LeastEffortProducts != 3 {
		t.Errorf("diverse least-effort products = %d, want 3 (p2, p3, p1)", resDiverse.LeastEffortProducts)
	}
	if resDiverse.AverageEffort <= resMono.AverageEffort {
		t.Error("diverse d3 should exceed mono d3")
	}
	if len(resDiverse.Paths) != 1 || len(resDiverse.Paths[0].Hosts) != 4 {
		t.Errorf("expected the single a-b-c-d path, got %+v", resDiverse.Paths)
	}
	if resDiverse.Paths[0].Likelihood >= resMono.Paths[0].Likelihood {
		t.Error("the diversified path should be less likely to succeed")
	}
}

func TestEffortValidation(t *testing.T) {
	net, sim := smallSetup(t)
	a := assign("p1", "p2", "p3", "p1")
	if _, err := Effort(nil, a, sim, EffortConfig{Entry: "a", Target: "d"}); err == nil {
		t.Error("nil network should be rejected")
	}
	if _, err := Effort(net, a, nil, EffortConfig{Entry: "a", Target: "d"}); err == nil {
		t.Error("nil similarity should be rejected")
	}
	if _, err := Effort(net, a, sim, EffortConfig{Entry: "zz", Target: "d"}); err == nil {
		t.Error("unknown entry should be rejected")
	}
	if _, err := Effort(net, a, sim, EffortConfig{Entry: "a", Target: "zz"}); err == nil {
		t.Error("unknown target should be rejected")
	}
	// Disconnected target.
	net2, sim2 := smallSetup(t)
	iso := &netmodel.Host{
		ID:       "island",
		Services: []netmodel.ServiceID{"os"},
		Choices:  map[netmodel.ServiceID][]netmodel.ProductID{"os": {"p1"}},
	}
	if err := net2.AddHost(iso); err != nil {
		t.Fatal(err)
	}
	a2 := assign("p1", "p2", "p3", "p1")
	a2.Set("island", "os", "p1")
	if _, err := Effort(net2, a2, sim2, EffortConfig{Entry: "a", Target: "island"}); err == nil {
		t.Error("unreachable target should be rejected")
	}
}

func TestEvaluateOnCaseStudy(t *testing.T) {
	net, err := casestudy.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := casestudy.Similarity()
	mono, err := baseline.Mono(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := baseline.GreedyColoring(net, sim, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EffortConfig{
		Entry:           casestudy.EntryCorporate4,
		Target:          casestudy.TargetWinCC,
		ExploitServices: casestudy.AttackServices(),
		MaxExtraHops:    2,
		MaxPaths:        128,
	}
	monoSummary, err := Evaluate(net, mono, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	greedySummary, err := Evaluate(net, greedy, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if greedySummary.Richness.Overall <= monoSummary.Richness.Overall {
		t.Errorf("greedy richness %v should exceed mono %v",
			greedySummary.Richness.Overall, monoSummary.Richness.Overall)
	}
	if greedySummary.AverageEffort < monoSummary.AverageEffort {
		t.Errorf("greedy average effort %v should be at least mono %v",
			greedySummary.AverageEffort, monoSummary.AverageEffort)
	}
	if monoSummary.LeastEffort <= 0 || greedySummary.LeastEffort <= 0 {
		t.Error("least effort should be positive")
	}
}

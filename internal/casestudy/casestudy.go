// Package casestudy reconstructs the Stuxnet-inspired case study of
// Section VII: the integrated IT/OT topology of Fig. 3, the per-host service
// and product catalogue of Table IV, and the two constraint scenarios
// (host constraints C1, product constraints C2) used to compute the
// constrained optimal assignments of Fig. 4(b) and 4(c).
//
// The paper publishes the topology as a figure and the catalogue as a
// check-mark table; the exact per-host candidate lists are reconstructed here
// from the host roles, the WinCC compatibility requirements quoted in the
// text, and the products visible in Fig. 4.  EXPERIMENTS.md documents this
// reconstruction.
package casestudy

import (
	"fmt"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

// Zone names of the integrated ICS (Fig. 3).
const (
	ZoneCorporate  = "corporate"
	ZoneDMZ        = "dmz"
	ZoneOperations = "operations"
	ZoneControl    = "control"
	ZoneClients    = "clients"
	ZoneRemote     = "remote"
	ZoneVendors    = "vendors"
	ZoneField      = "field"
)

// Well-known hosts referenced by the experiments.
const (
	EntryCorporate1 = netmodel.HostID("c1")
	EntryCorporate4 = netmodel.HostID("c4")
	EntryClients    = netmodel.HostID("e3")
	EntryRemote     = netmodel.HostID("r4")
	EntryVendors    = netmodel.HostID("v1")
	TargetWinCC     = netmodel.HostID("t5")
)

// Entries returns the five malware entry points used by the MTTC evaluation
// of Table VI.
func Entries() []netmodel.HostID {
	return []netmodel.HostID{EntryCorporate1, EntryCorporate4, EntryClients, EntryRemote, EntryVendors}
}

// Product shorthands (IDs from the vulnsim paper tables).
var (
	osWindowsOnly = []netmodel.ProductID{vulnsim.ProdWinXP, vulnsim.ProdWin7}
	osAll         = []netmodel.ProductID{vulnsim.ProdWinXP, vulnsim.ProdWin7, vulnsim.ProdUbuntu, vulnsim.ProdDebian}
	osModern      = []netmodel.ProductID{vulnsim.ProdWin7, vulnsim.ProdUbuntu, vulnsim.ProdDebian}
	wbIEOnly      = []netmodel.ProductID{vulnsim.ProdIE8, vulnsim.ProdIE10}
	wbAll         = []netmodel.ProductID{vulnsim.ProdIE8, vulnsim.ProdIE10, vulnsim.ProdChrome}
	dbMicrosoft   = []netmodel.ProductID{vulnsim.ProdMSSQL08, vulnsim.ProdMSSQL14}
	dbAll         = []netmodel.ProductID{vulnsim.ProdMSSQL08, vulnsim.ProdMSSQL14, vulnsim.ProdMySQL55, vulnsim.ProdMariaDB10}
)

type hostDef struct {
	id     netmodel.HostID
	zone   string
	role   string
	legacy bool
	os     []netmodel.ProductID
	wb     []netmodel.ProductID
	db     []netmodel.ProductID
}

// hostDefs is the reconstructed Table IV.  Legacy hosts (the grey OT rows)
// list their currently installed product first; the optimiser pins legacy
// hosts to that first candidate.
func hostDefs() []hostDef {
	return []hostDef{
		// Corporate (sub)network.
		{id: "c1", zone: ZoneCorporate, role: "WinCC Web Client", os: osWindowsOnly, wb: wbIEOnly},
		{id: "c2", zone: ZoneCorporate, role: "OS Web Client", os: osAll, wb: wbAll},
		{id: "c3", zone: ZoneCorporate, role: "Data Monitor Web Client", os: osModern, wb: wbAll},
		{id: "c4", zone: ZoneCorporate, role: "Historian Web Client", os: osAll, wb: wbAll, db: dbAll},
		// DMZ.
		{id: "z1", zone: ZoneDMZ, role: "Virusscan Server", os: osAll, db: dbAll},
		{id: "z2", zone: ZoneDMZ, role: "WSUS Server", os: osWindowsOnly, db: dbMicrosoft},
		{id: "z3", zone: ZoneDMZ, role: "Web Navigator Server", os: osWindowsOnly, wb: wbIEOnly, db: dbAll},
		{id: "z4", zone: ZoneDMZ, role: "OS Web Server", os: osAll, db: dbAll},
		// Operations network (legacy, cannot be diversified).
		{id: "p1", zone: ZoneOperations, role: "Historian Web Client", legacy: true,
			os: []netmodel.ProductID{vulnsim.ProdWin7}, wb: []netmodel.ProductID{vulnsim.ProdIE10},
			db: []netmodel.ProductID{vulnsim.ProdMSSQL14}},
		{id: "p2", zone: ZoneOperations, role: "SIMATIC IT Server", legacy: true,
			os: []netmodel.ProductID{vulnsim.ProdWinXP}, db: []netmodel.ProductID{vulnsim.ProdMSSQL08}},
		{id: "p3", zone: ZoneOperations, role: "SIMATIC SQL Server", legacy: true,
			os: []netmodel.ProductID{vulnsim.ProdWin7}, db: []netmodel.ProductID{vulnsim.ProdMySQL55}},
		// Control network (legacy, cannot be diversified).  The installed
		// products mirror the partially diverse deployment visible in the
		// control zone of Fig. 4.
		{id: "t1", zone: ZoneControl, role: "Maintenance Server", legacy: true,
			os: []netmodel.ProductID{vulnsim.ProdWinXP}, wb: []netmodel.ProductID{vulnsim.ProdIE8},
			db: []netmodel.ProductID{vulnsim.ProdMySQL55}},
		{id: "t2", zone: ZoneControl, role: "OS Client", legacy: true,
			os: []netmodel.ProductID{vulnsim.ProdWin7}, wb: []netmodel.ProductID{vulnsim.ProdIE10}},
		{id: "t3", zone: ZoneControl, role: "WinCC Client", legacy: true,
			os: []netmodel.ProductID{vulnsim.ProdWinXP}, wb: []netmodel.ProductID{vulnsim.ProdIE8}},
		{id: "t4", zone: ZoneControl, role: "OS Server", legacy: true,
			os: []netmodel.ProductID{vulnsim.ProdWin7}, db: []netmodel.ProductID{vulnsim.ProdMSSQL14}},
		{id: "t5", zone: ZoneControl, role: "WinCC Server", legacy: true,
			os: []netmodel.ProductID{vulnsim.ProdWin7}, db: []netmodel.ProductID{vulnsim.ProdMSSQL08}},
		{id: "t6", zone: ZoneControl, role: "WinCC Server", legacy: true,
			os: []netmodel.ProductID{vulnsim.ProdWin7}, db: []netmodel.ProductID{vulnsim.ProdMSSQL14}},
		// Clients network.
		{id: "e1", zone: ZoneClients, role: "WinCC Web Client", os: osWindowsOnly, wb: wbIEOnly, db: dbAll},
		{id: "e2", zone: ZoneClients, role: "OS Web Client", os: osAll, wb: wbAll},
		{id: "e3", zone: ZoneClients, role: "Client Workstation", os: osAll, wb: wbAll},
		{id: "e4", zone: ZoneClients, role: "Client Historian", os: osAll, db: dbAll},
		// Remote clients.
		{id: "r1", zone: ZoneRemote, role: "WinCC Web Client", os: osWindowsOnly, wb: wbIEOnly, db: dbAll},
		{id: "r2", zone: ZoneRemote, role: "OS Web Client", os: osAll, wb: wbAll},
		{id: "r3", zone: ZoneRemote, role: "Client Workstation", os: osAll, wb: wbAll},
		{id: "r4", zone: ZoneRemote, role: "Client Workstation", os: osAll, wb: wbAll},
		{id: "r5", zone: ZoneRemote, role: "Client Historian", os: osAll, db: dbAll},
		// Vendors support network.
		{id: "v1", zone: ZoneVendors, role: "Historian Web Client", os: osWindowsOnly, wb: wbIEOnly},
		{id: "v2", zone: ZoneVendors, role: "Vendors Workstation", os: osAll, wb: wbAll},
		{id: "v3", zone: ZoneVendors, role: "Vendors Workstation", os: osModern, wb: wbAll},
	}
}

// links is the reconstructed Fig. 3 connectivity: rings inside every zone
// plus the firewall-permitted conduits annotated on the figure
// (c2,c4 -> z4; p2,p3 -> z4; z4 -> t1,t2; p1 -> t1,e1,r1,v1; t1,t2 -> e1,r1,v1)
// and the field-device attachments of the control servers.
func links() [][2]netmodel.HostID {
	return [][2]netmodel.HostID{
		// Corporate ring.
		{"c1", "c2"}, {"c2", "c3"}, {"c3", "c4"}, {"c4", "c1"},
		// DMZ ring.
		{"z1", "z2"}, {"z2", "z3"}, {"z3", "z4"}, {"z4", "z1"},
		// Corporate <-> DMZ conduits.
		{"c2", "z4"}, {"c4", "z4"}, {"c1", "z3"}, {"c3", "z3"}, {"c1", "z1"},
		// Operations ring.
		{"p1", "p2"}, {"p2", "p3"}, {"p3", "p1"},
		// Operations <-> DMZ conduits.
		{"p2", "z4"}, {"p3", "z4"},
		// DMZ <-> Control conduits.
		{"z4", "t1"}, {"z4", "t2"},
		// Operations <-> Control conduit.
		{"p1", "t1"},
		// Control network mesh.
		{"t1", "t2"}, {"t1", "t3"}, {"t2", "t3"}, {"t2", "t4"}, {"t3", "t5"},
		{"t4", "t5"}, {"t5", "t6"}, {"t4", "t6"},
		// Clients ring and conduits.
		{"e1", "e2"}, {"e2", "e3"}, {"e3", "e4"}, {"e4", "e1"},
		{"t1", "e1"}, {"t2", "e1"}, {"p1", "e1"},
		// Remote clients ring and conduits.
		{"r1", "r2"}, {"r2", "r3"}, {"r3", "r4"}, {"r4", "r5"}, {"r5", "r1"},
		{"t1", "r1"}, {"t2", "r1"}, {"p1", "r1"},
		// Vendors ring and conduits.
		{"v1", "v2"}, {"v2", "v3"}, {"v3", "v1"},
		{"t1", "v1"}, {"t2", "v1"}, {"p1", "v1"},
	}
}

// Build constructs the case-study network.
func Build() (*netmodel.Network, error) {
	n := netmodel.New()
	for _, def := range hostDefs() {
		h := &netmodel.Host{
			ID:      def.id,
			Zone:    def.zone,
			Role:    def.role,
			Legacy:  def.legacy,
			Choices: make(map[netmodel.ServiceID][]netmodel.ProductID),
		}
		if len(def.os) > 0 {
			h.Services = append(h.Services, netmodel.ServiceOS)
			h.Choices[netmodel.ServiceOS] = def.os
		}
		if len(def.wb) > 0 {
			h.Services = append(h.Services, netmodel.ServiceBrowser)
			h.Choices[netmodel.ServiceBrowser] = def.wb
		}
		if len(def.db) > 0 {
			h.Services = append(h.Services, netmodel.ServiceDatabase)
			h.Choices[netmodel.ServiceDatabase] = def.db
		}
		if err := n.AddHost(h); err != nil {
			return nil, fmt.Errorf("casestudy: %w", err)
		}
	}
	for _, l := range links() {
		if err := n.AddLink(l[0], l[1]); err != nil {
			return nil, fmt.Errorf("casestudy: link %s-%s: %w", l[0], l[1], err)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("casestudy: %w", err)
	}
	return n, nil
}

// Similarity returns the similarity table used by the case study: the merged
// paper tables for operating systems, web browsers and database servers.
func Similarity() *vulnsim.SimilarityTable {
	return vulnsim.PaperSimilarity()
}

// HostConstraints returns the constraint set C1 of Section VII-B: hosts z4,
// e1, r1 and v1 are required by company policy to run specific products.
func HostConstraints() *netmodel.ConstraintSet {
	cs := netmodel.NewConstraintSet()
	cs.Fix("z4", netmodel.ServiceOS, vulnsim.ProdWin7)
	cs.Fix("z4", netmodel.ServiceDatabase, vulnsim.ProdMSSQL14)
	cs.Fix("e1", netmodel.ServiceOS, vulnsim.ProdWin7)
	cs.Fix("e1", netmodel.ServiceBrowser, vulnsim.ProdIE8)
	cs.Fix("e1", netmodel.ServiceDatabase, vulnsim.ProdMSSQL14)
	cs.Fix("r1", netmodel.ServiceOS, vulnsim.ProdWin7)
	cs.Fix("r1", netmodel.ServiceBrowser, vulnsim.ProdIE8)
	cs.Fix("r1", netmodel.ServiceDatabase, vulnsim.ProdMSSQL14)
	cs.Fix("v1", netmodel.ServiceOS, vulnsim.ProdWin7)
	cs.Fix("v1", netmodel.ServiceBrowser, vulnsim.ProdIE8)
	return cs
}

// ProductConstraints returns the constraint set C2 of Section VII-B: C1 plus
// the global product constraint that Internet Explorer must not be installed
// on non-Windows operating systems (the paper's example forbids IE10 on
// Ubuntu 14.04, which moves the browsers of c2 and v2 to Chrome).
func ProductConstraints() *netmodel.ConstraintSet {
	cs := HostConstraints()
	for _, osID := range []netmodel.ProductID{vulnsim.ProdUbuntu, vulnsim.ProdDebian} {
		for _, ie := range []netmodel.ProductID{vulnsim.ProdIE8, vulnsim.ProdIE10} {
			cs.Add(netmodel.Constraint{
				Host:     netmodel.AllHosts,
				ServiceM: netmodel.ServiceOS,
				ServiceN: netmodel.ServiceBrowser,
				ProductJ: osID,
				ProductK: ie,
				Mode:     netmodel.Forbid,
			})
		}
	}
	return cs
}

// AttackServices returns the three services for which the Table V/VI
// attacker holds zero-day exploits.
func AttackServices() []netmodel.ServiceID {
	return []netmodel.ServiceID{netmodel.ServiceOS, netmodel.ServiceBrowser, netmodel.ServiceDatabase}
}

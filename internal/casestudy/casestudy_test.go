package casestudy

import (
	"testing"

	"netdiversity/internal/netmodel"
	"netdiversity/internal/vulnsim"
)

func TestBuildStructure(t *testing.T) {
	net, err := Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := net.NumHosts(); got != 29 {
		t.Errorf("case study has %d hosts, want 29 (Fig. 3)", got)
	}
	if net.NumLinks() == 0 {
		t.Fatal("case study has no links")
	}
	if comps := net.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("case study should be a single connected network, got %d components", len(comps))
	}
	// The attack target must be reachable from every entry point used by
	// Table VI.
	for _, entry := range Entries() {
		dist := net.ShortestPathLengths(entry)
		if _, ok := dist[TargetWinCC]; !ok {
			t.Errorf("target %s unreachable from entry %s", TargetWinCC, entry)
		}
	}
}

func TestZonesAndLegacy(t *testing.T) {
	net, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	zones := make(map[string]int)
	legacy := 0
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		zones[h.Zone]++
		if h.Legacy {
			legacy++
			if h.Zone != ZoneOperations && h.Zone != ZoneControl {
				t.Errorf("legacy host %s outside the OT zones (%s)", hid, h.Zone)
			}
		}
	}
	if zones[ZoneCorporate] != 4 || zones[ZoneDMZ] != 4 || zones[ZoneOperations] != 3 ||
		zones[ZoneControl] != 6 || zones[ZoneClients] != 4 || zones[ZoneRemote] != 5 ||
		zones[ZoneVendors] != 3 {
		t.Errorf("zone sizes = %v", zones)
	}
	if legacy != 9 {
		t.Errorf("legacy hosts = %d, want 9 (operations + control)", legacy)
	}
}

func TestHostCatalogueUsesPaperProducts(t *testing.T) {
	net, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	sim := Similarity()
	for _, hid := range net.Hosts() {
		h, _ := net.Host(hid)
		if len(h.Services) == 0 {
			t.Errorf("host %s has no services", hid)
		}
		for svc, products := range h.Choices {
			for _, p := range products {
				if !sim.Has(string(p)) {
					t.Errorf("host %s service %s candidate %s missing from the similarity table", hid, svc, p)
				}
			}
		}
	}
	// Known spot checks from the paper: the WinCC web client c1 requires a
	// Windows OS and Internet Explorer.
	c1, _ := net.Host("c1")
	for _, p := range c1.Choices[netmodel.ServiceOS] {
		if p != vulnsim.ProdWinXP && p != vulnsim.ProdWin7 {
			t.Errorf("c1 OS candidate %s should be a Windows release", p)
		}
	}
	for _, p := range c1.Choices[netmodel.ServiceBrowser] {
		if p != vulnsim.ProdIE8 && p != vulnsim.ProdIE10 {
			t.Errorf("c1 browser candidate %s should be Internet Explorer", p)
		}
	}
	// The WSUS server z2 requires Windows and a Microsoft database.
	z2, _ := net.Host("z2")
	for _, p := range z2.Choices[netmodel.ServiceDatabase] {
		if p != vulnsim.ProdMSSQL08 && p != vulnsim.ProdMSSQL14 {
			t.Errorf("z2 database candidate %s should be SQL Server", p)
		}
	}
}

func TestConstraintScenariosValid(t *testing.T) {
	net, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	c1 := HostConstraints()
	if err := c1.Validate(net); err != nil {
		t.Errorf("C1 invalid: %v", err)
	}
	if got := len(c1.FixedHosts()); got != 4 {
		t.Errorf("C1 pins %d hosts, want 4 (z4, e1, r1, v1)", got)
	}
	c2 := ProductConstraints()
	if err := c2.Validate(net); err != nil {
		t.Errorf("C2 invalid: %v", err)
	}
	if len(c2.Constraints()) == 0 {
		t.Error("C2 should add global product constraints")
	}
	if len(c2.FixedHosts()) != len(c1.FixedHosts()) {
		t.Error("C2 should include all C1 host constraints")
	}
}

func TestEntriesAndServices(t *testing.T) {
	if got := len(Entries()); got != 5 {
		t.Errorf("entries = %d, want 5", got)
	}
	if got := len(AttackServices()); got != 3 {
		t.Errorf("attack services = %d, want 3", got)
	}
	net, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Entries() {
		if _, ok := net.Host(e); !ok {
			t.Errorf("entry %s missing from the network", e)
		}
	}
	if _, ok := net.Host(TargetWinCC); !ok {
		t.Error("target t5 missing from the network")
	}
}

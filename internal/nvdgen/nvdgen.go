// Package nvdgen generates synthetic NVD-style CVE corpora.
//
// The paper derives its similarity tables from the live NVD database via
// CVE-SEARCH.  That data source is unavailable offline, so this package
// provides two substitutes that exercise the identical code path
// (CVE -> affected CPE list -> per-product vulnerability sets -> Jaccard):
//
//  1. FromSimilarityTable builds a corpus whose per-product vulnerability
//     counts and pairwise shared-vulnerability counts exactly reproduce a
//     given SimilarityTable (for example the paper's Table II), so the
//     downstream Jaccard computation recovers the published values.
//  2. Generator produces random corpora for arbitrary product families with
//     configurable intra-family overlap, used by property tests and by the
//     synthetic workloads of the scalability experiments.
package nvdgen

import (
	"fmt"
	"math/rand"
	"sort"

	"netdiversity/internal/vulnsim"
)

// FromSimilarityTable synthesises a CVE database whose per-product
// vulnerability totals and pairwise shared-vulnerability counts reproduce the
// given similarity table, so that re-running the Jaccard pipeline on the
// corpus recovers the table's similarities (up to the table's own rounding).
//
// Real vulnerability data contains CVEs affecting more than two products
// (e.g. a single flaw present in Windows 7, 8.1 and 10), and the paper's
// tables reflect that: the sum of a product's pairwise shared counts can
// exceed its total.  The construction therefore proceeds greedily:
//
//  1. repeatedly pick the product pair with the largest remaining shared
//     demand, extend it to the largest product group whose pairwise demands
//     are all still positive, and emit CVEs affecting the whole group;
//  2. finally top every product up with unique CVEs until its total matches.
//
// The greedy grouping satisfies every pairwise count exactly for tables that
// are realisable (including the paper's Tables II/III); if a product's total
// is too small to accommodate its shared counts even with grouping, an error
// is returned.
func FromSimilarityTable(table *vulnsim.SimilarityTable, startYear int) (*vulnsim.Database, error) {
	if err := table.Validate(); err != nil {
		return nil, fmt.Errorf("nvdgen: invalid table: %w", err)
	}
	if startYear <= 0 {
		startYear = 1999
	}
	products := table.Products()
	index := make(map[string]int, len(products))
	for i, p := range products {
		index[p] = i
	}

	// Remaining pairwise demand and per-product capacity.
	remPair := make([][]int, len(products))
	for i := range remPair {
		remPair[i] = make([]int, len(products))
	}
	remTotal := make([]int, len(products))
	for i, a := range products {
		remTotal[i] = table.Total(a)
		for j := i + 1; j < len(products); j++ {
			if e, ok := table.Entry(a, products[j]); ok {
				remPair[i][j] = e.Shared
				remPair[j][i] = e.Shared
			}
		}
	}

	db := vulnsim.NewDatabase()
	seq := 0
	nextID := func() string {
		seq++
		// Spread identifiers over years so year filters have something to
		// bite on; 10,000 CVEs per synthetic year.
		year := startYear + (seq-1)/10000
		return fmt.Sprintf("CVE-%04d-%04d", year, 1000+(seq-1)%10000)
	}
	emit := func(group []int, count int, cvss float64) error {
		affected := make([]string, len(group))
		for i, g := range group {
			affected[i] = products[g]
		}
		for k := 0; k < count; k++ {
			c, err := vulnsim.NewCVE(nextID(), cvss, affected...)
			if err != nil {
				return err
			}
			if err := db.Add(c); err != nil {
				return err
			}
		}
		return nil
	}

	for {
		// Pick the pair with the largest remaining demand.
		bestI, bestJ, bestV := -1, -1, 0
		for i := 0; i < len(products); i++ {
			for j := i + 1; j < len(products); j++ {
				if remPair[i][j] > bestV {
					bestI, bestJ, bestV = i, j, remPair[i][j]
				}
			}
		}
		if bestV == 0 {
			break
		}
		group := []int{bestI, bestJ}
		inGroup := map[int]bool{bestI: true, bestJ: true}
		// Greedily extend with products that still share demand with every
		// current group member.
		for {
			bestC, bestMin := -1, 0
			for c := 0; c < len(products); c++ {
				if inGroup[c] {
					continue
				}
				minDemand := remPair[group[0]][c]
				for _, g := range group[1:] {
					if remPair[g][c] < minDemand {
						minDemand = remPair[g][c]
					}
				}
				if minDemand > bestMin {
					bestC, bestMin = c, minDemand
				}
			}
			if bestC < 0 {
				break
			}
			group = append(group, bestC)
			inGroup[bestC] = true
		}
		// Number of CVEs for this group: limited by every in-group pairwise
		// demand and by every member's remaining capacity.
		count := remPair[group[0]][group[1]]
		for x := 0; x < len(group); x++ {
			if remTotal[group[x]] < count {
				count = remTotal[group[x]]
			}
			for y := x + 1; y < len(group); y++ {
				if remPair[group[x]][group[y]] < count {
					count = remPair[group[x]][group[y]]
				}
			}
		}
		if count <= 0 {
			return nil, fmt.Errorf("nvdgen: table not realisable: product %q has no capacity left for its shared counts",
				products[bestI])
		}
		if err := emit(group, count, 7.5); err != nil {
			return nil, err
		}
		for x := 0; x < len(group); x++ {
			remTotal[group[x]] -= count
			for y := x + 1; y < len(group); y++ {
				remPair[group[x]][group[y]] -= count
				remPair[group[y]][group[x]] -= count
			}
		}
	}

	// Unique vulnerabilities make up each product's remaining total.
	for i := range products {
		if remTotal[i] < 0 {
			return nil, fmt.Errorf("nvdgen: product %q total exceeded while satisfying shared counts", products[i])
		}
		if remTotal[i] > 0 {
			if err := emit([]int{i}, remTotal[i], 5.0); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// Family groups products that plausibly share vulnerabilities (same vendor or
// same code base), e.g. the Windows releases or the MySQL/MariaDB pair.
type Family struct {
	// Name identifies the family (used only for reporting).
	Name string
	// Products are the product IDs belonging to the family.
	Products []string
	// IntraShare is the probability that a family vulnerability affects any
	// given additional member of the family beyond the first.
	IntraShare float64
}

// Config controls the random corpus generator.
type Config struct {
	// Families describes the product families.  Products not listed in any
	// family only ever receive unique vulnerabilities.
	Families []Family
	// VulnsPerProduct is the mean number of vulnerabilities drawn for each
	// product (before sharing).
	VulnsPerProduct int
	// CrossFamilyShare is the probability that a vulnerability of one family
	// also affects a product of a different family (rare in practice).
	CrossFamilyShare float64
	// StartYear and EndYear bound the synthetic publication years.
	StartYear int
	EndYear   int
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.VulnsPerProduct <= 0 {
		c.VulnsPerProduct = 200
	}
	if c.StartYear == 0 {
		c.StartYear = 1999
	}
	if c.EndYear < c.StartYear {
		c.EndYear = c.StartYear + 17
	}
	return c
}

// Generator produces random CVE corpora.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator returns a generator for the given configuration.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// allProducts returns the set of products named by the configuration in a
// deterministic order.
func (g *Generator) allProducts() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, fam := range g.cfg.Families {
		for _, p := range fam.Products {
			if _, ok := seen[p]; ok {
				continue
			}
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Generate builds the synthetic corpus.
func (g *Generator) Generate() (*vulnsim.Database, error) {
	db := vulnsim.NewDatabase()
	products := g.allProducts()
	if len(products) == 0 {
		return nil, fmt.Errorf("nvdgen: configuration names no products")
	}
	familyOf := make(map[string]int)
	for fi, fam := range g.cfg.Families {
		for _, p := range fam.Products {
			if _, ok := familyOf[p]; !ok {
				familyOf[p] = fi
			}
		}
	}
	years := g.cfg.EndYear - g.cfg.StartYear + 1
	seqByYear := make(map[int]int)
	nextID := func() string {
		year := g.cfg.StartYear + g.rng.Intn(years)
		seqByYear[year]++
		return fmt.Sprintf("CVE-%04d-%04d", year, 1000+seqByYear[year])
	}

	for _, p := range products {
		n := g.cfg.VulnsPerProduct/2 + g.rng.Intn(g.cfg.VulnsPerProduct+1)
		for i := 0; i < n; i++ {
			affected := []string{p}
			if fi, ok := familyOf[p]; ok {
				fam := g.cfg.Families[fi]
				for _, other := range fam.Products {
					if other == p {
						continue
					}
					if g.rng.Float64() < fam.IntraShare {
						affected = append(affected, other)
					}
				}
			}
			if g.cfg.CrossFamilyShare > 0 && g.rng.Float64() < g.cfg.CrossFamilyShare {
				other := products[g.rng.Intn(len(products))]
				if other != p && !contains(affected, other) {
					affected = append(affected, other)
				}
			}
			cvss := 2 + g.rng.Float64()*8
			c, err := vulnsim.NewCVE(nextID(), cvss, affected...)
			if err != nil {
				return nil, err
			}
			if err := db.Add(c); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// DefaultFamilies returns a family layout mirroring the paper's product set:
// Windows releases, Debian-derived Linux distributions, RPM distributions,
// the Microsoft browsers, the Mozilla browsers and the MySQL family.
func DefaultFamilies() []Family {
	return []Family{
		{Name: "windows", IntraShare: 0.30, Products: []string{
			vulnsim.ProdWinXP, vulnsim.ProdWin7, vulnsim.ProdWin81, vulnsim.ProdWin10,
		}},
		{Name: "debian-like", IntraShare: 0.20, Products: []string{
			vulnsim.ProdUbuntu, vulnsim.ProdDebian,
		}},
		{Name: "rpm-like", IntraShare: 0.12, Products: []string{
			vulnsim.ProdSuse, vulnsim.ProdFedora,
		}},
		{Name: "mac", IntraShare: 0, Products: []string{vulnsim.ProdMacOS}},
		{Name: "ms-browsers", IntraShare: 0.25, Products: []string{
			vulnsim.ProdIE8, vulnsim.ProdIE10, vulnsim.ProdEdge,
		}},
		{Name: "mozilla", IntraShare: 0.45, Products: []string{
			vulnsim.ProdFirefox, vulnsim.ProdSeaMonkey,
		}},
		{Name: "webkit-others", IntraShare: 0.01, Products: []string{
			vulnsim.ProdChrome, vulnsim.ProdSafari, vulnsim.ProdOpera,
		}},
		{Name: "mssql", IntraShare: 0.25, Products: []string{
			vulnsim.ProdMSSQL08, vulnsim.ProdMSSQL14,
		}},
		{Name: "mysql", IntraShare: 0.40, Products: []string{
			vulnsim.ProdMySQL55, vulnsim.ProdMariaDB10,
		}},
	}
}

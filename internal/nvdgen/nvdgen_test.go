package nvdgen

import (
	"math"
	"testing"

	"netdiversity/internal/vulnsim"
)

func TestFromSimilarityTableReproducesPaperTables(t *testing.T) {
	for name, table := range map[string]*vulnsim.SimilarityTable{
		"os":       vulnsim.PaperOSTable(),
		"browser":  vulnsim.PaperBrowserTable(),
		"database": vulnsim.PaperDatabaseTable(),
	} {
		t.Run(name, func(t *testing.T) {
			db, err := FromSimilarityTable(table, 1999)
			if err != nil {
				t.Fatalf("FromSimilarityTable: %v", err)
			}
			rebuilt := vulnsim.BuildSimilarityTable(db, table.Products(), vulnsim.VulnFilter{})
			for _, a := range table.Products() {
				if got, want := rebuilt.Total(a), table.Total(a); got != want {
					t.Errorf("total of %s = %d, want %d", a, got, want)
				}
				for _, b := range table.Products() {
					if a >= b {
						continue
					}
					wantEntry, ok := table.Entry(a, b)
					if !ok {
						wantEntry = vulnsim.Entry{}
					}
					gotEntry, _ := rebuilt.Entry(a, b)
					if gotEntry.Shared != wantEntry.Shared {
						t.Errorf("shared(%s,%s) = %d, want %d", a, b, gotEntry.Shared, wantEntry.Shared)
					}
					// The rebuilt similarity is the exact Jaccard of the
					// published counts; the published similarity is rounded
					// to three decimals.
					if math.Abs(gotEntry.Similarity-wantEntry.Similarity) > 0.01 {
						t.Errorf("sim(%s,%s) = %.4f, want ~%.3f", a, b, gotEntry.Similarity, wantEntry.Similarity)
					}
				}
			}
		})
	}
}

func TestFromSimilarityTableInconsistentTotals(t *testing.T) {
	table := vulnsim.NewSimilarityTable([]string{"a", "b"})
	if err := table.SetTotal("a", 5); err != nil {
		t.Fatal(err)
	}
	if err := table.SetTotal("b", 100); err != nil {
		t.Fatal(err)
	}
	if err := table.Set("a", "b", 0.1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := FromSimilarityTable(table, 1999); err == nil {
		t.Fatal("totals smaller than shared counts should be rejected")
	}
}

func TestFromSimilarityTableEmpty(t *testing.T) {
	if _, err := FromSimilarityTable(vulnsim.NewSimilarityTable(nil), 1999); err == nil {
		t.Fatal("empty table should be rejected")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := Config{Families: DefaultFamilies(), VulnsPerProduct: 50, Seed: 7}
	a, err := NewGenerator(cfg).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := NewGenerator(cfg).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("same seed produced %d vs %d CVEs", a.Len(), b.Len())
	}
	for _, c := range a.All() {
		other, ok := b.Get(c.ID)
		if !ok {
			t.Fatalf("CVE %s missing from second run", c.ID)
		}
		if len(other.Affected) != len(c.Affected) {
			t.Fatalf("CVE %s affected lists differ", c.ID)
		}
	}
}

func TestGeneratorFamilyOverlap(t *testing.T) {
	cfg := Config{Families: DefaultFamilies(), VulnsPerProduct: 200, Seed: 11}
	db, err := NewGenerator(cfg).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	table := vulnsim.BuildSimilarityTable(db, []string{
		vulnsim.ProdWin7, vulnsim.ProdWin81, vulnsim.ProdUbuntu, vulnsim.ProdFirefox, vulnsim.ProdSeaMonkey,
	}, vulnsim.VulnFilter{})
	// Products of the same family must be markedly more similar than
	// products of different families.
	sameFamily := table.Sim(vulnsim.ProdWin7, vulnsim.ProdWin81)
	crossFamily := table.Sim(vulnsim.ProdWin7, vulnsim.ProdUbuntu)
	if sameFamily <= crossFamily {
		t.Errorf("windows family similarity %.3f should exceed cross-family %.3f", sameFamily, crossFamily)
	}
	mozilla := table.Sim(vulnsim.ProdFirefox, vulnsim.ProdSeaMonkey)
	if mozilla < 0.2 {
		t.Errorf("mozilla family similarity %.3f unexpectedly low", mozilla)
	}
}

func TestGeneratorNoProducts(t *testing.T) {
	if _, err := NewGenerator(Config{}).Generate(); err == nil {
		t.Fatal("generator without products should fail")
	}
}

func TestGeneratorYearsWithinRange(t *testing.T) {
	cfg := Config{
		Families:        []Family{{Name: "f", Products: []string{"p1", "p2"}, IntraShare: 0.5}},
		VulnsPerProduct: 30,
		StartYear:       2005,
		EndYear:         2010,
		Seed:            3,
	}
	db, err := NewGenerator(cfg).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, c := range db.All() {
		if c.Year < 2005 || c.Year > 2010 {
			t.Fatalf("CVE %s outside configured year range", c.ID)
		}
	}
}

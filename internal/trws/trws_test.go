package trws

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netdiversity/internal/mrf"
	"netdiversity/internal/mrf/mrftest"
)

// bruteForce finds the exact minimum energy by enumeration (only usable for
// tiny graphs).
func bruteForce(g *mrf.Graph) ([]int, float64) {
	n := g.NumNodes()
	best := make([]int, n)
	bestE := math.Inf(1)
	labels := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if e := g.MustEnergy(labels); e < bestE {
				bestE = e
				copy(best, labels)
			}
			return
		}
		for l := 0; l < g.NumLabels(i); l++ {
			labels[i] = l
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestE
}

// randomGraph builds a small random MRF: a ring plus chords, random unary and
// pairwise costs.
func randomGraph(t *testing.T, rng *rand.Rand, nodes, labels int) *mrf.Graph {
	t.Helper()
	counts := make([]int, nodes)
	for i := range counts {
		counts[i] = labels
	}
	g, err := mrf.NewGraph(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		for l := 0; l < labels; l++ {
			if err := g.SetUnary(i, l, rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	addEdge := func(u, v int) {
		cost := make([][]float64, labels)
		for a := range cost {
			cost[a] = make([]float64, labels)
			for b := range cost[a] {
				cost[a][b] = rng.Float64() * 2
			}
		}
		if _, err := g.AddEdge(u, v, cost); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nodes; i++ {
		addEdge(i, (i+1)%nodes)
	}
	addEdge(0, nodes/2)
	return g
}

func TestSolveNilAndInvalid(t *testing.T) {
	if _, err := Solve(nil, Options{}); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph should return ErrNilGraph, got %v", err)
	}
	g, _ := mrf.NewGraph([]int{2})
	_ = g.SetUnary(0, 0, math.NaN())
	if _, err := Solve(g, Options{}); err == nil {
		t.Error("invalid graph should be rejected")
	}
}

func TestSolveChainExact(t *testing.T) {
	// A 5-node chain with 3 labels: TRW-S should find the exact optimum.
	rng := rand.New(rand.NewSource(3))
	counts := []int{3, 3, 3, 3, 3}
	g, err := mrf.NewGraph(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		for l := 0; l < 3; l++ {
			_ = g.SetUnary(i, l, rng.Float64())
		}
	}
	for i := 0; i+1 < len(counts); i++ {
		cost := make([][]float64, 3)
		for a := range cost {
			cost[a] = make([]float64, 3)
			for b := range cost[a] {
				cost[a][b] = rng.Float64()
			}
		}
		if _, err := g.AddEdge(i, i+1, cost); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := Solve(g, Options{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	_, wantE := bruteForce(g)
	if math.Abs(sol.Energy-wantE) > 1e-9 {
		t.Errorf("chain energy = %v, brute force = %v", sol.Energy, wantE)
	}
	if sol.Energy < sol.LowerBound-1e-9 {
		t.Error("energy below reported lower bound")
	}
}

func TestSolveDiversificationInstance(t *testing.T) {
	// Potts-style anti-affinity on a ring: adjacent nodes should get
	// different labels, which is achievable on an even ring.
	const n = 6
	counts := make([]int, n)
	for i := range counts {
		counts[i] = 3
	}
	g, err := mrf.NewGraph(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := g.AddEdge(i, (i+1)%n, mrf.PottsCost(3, 3, 1)); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Energy != 0 {
		t.Errorf("even ring should be perfectly colourable, energy = %v (labels %v)", sol.Energy, sol.Labels)
	}
}

func TestSolveRespectsHardConstraints(t *testing.T) {
	// Node 0 is pinned to label 1 through a HardPenalty unary; the optimal
	// solution must keep it there.
	g, err := mrf.NewGraph([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.SetUnary(0, 0, mrf.HardPenalty)
	if _, err := g.AddEdge(0, 1, mrf.PottsCost(2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Labels[0] != 1 {
		t.Errorf("pinned node decoded to %d, want 1", sol.Labels[0])
	}
	if sol.Labels[1] != 0 {
		t.Errorf("neighbour should avoid the pinned label, got %d", sol.Labels[1])
	}
}

func TestSolveNeverWorseThanGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(t, rng, 8, 3)
		sol, err := Solve(g, Options{MaxIterations: 30})
		if err != nil {
			return false
		}
		greedy := g.MustEnergy(g.GreedyLabeling())
		return sol.Energy <= greedy+1e-9 && sol.Energy >= sol.LowerBound-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolveNearOptimalOnSmallLoopyGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(t, rng, 7, 2)
		sol, err := Solve(g, Options{MaxIterations: 60})
		if err != nil {
			t.Fatal(err)
		}
		_, wantE := bruteForce(g)
		if sol.Energy < wantE-1e-9 {
			t.Fatalf("solver energy %v below true optimum %v", sol.Energy, wantE)
		}
		// Loopy graphs have no exactness guarantee, but on these tiny
		// instances TRW-S should come very close.
		if sol.Energy > wantE*1.15+0.2 {
			t.Errorf("trial %d: energy %v far from optimum %v", trial, sol.Energy, wantE)
		}
	}
}

func TestSolveWorkersMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(t, rng, 12, 4)
	serial, err := Solve(g, Options{MaxIterations: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Solve(g, Options{MaxIterations: 20, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.Energy-parallel.Energy) > 1e-9 {
		t.Errorf("parallel sweep changed the result: %v vs %v", serial.Energy, parallel.Energy)
	}
}

func TestSolveContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(t, rng, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, g, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context should surface context.Canceled, got %v", err)
	}
}

func TestSolveIsolatedNodes(t *testing.T) {
	g, err := mrf.NewGraph([]int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = g.SetUnary(0, 2, -1)
	_ = g.SetUnary(1, 1, -2)
	sol, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Labels[0] != 2 || sol.Labels[1] != 1 {
		t.Errorf("isolated nodes should pick their unary minima, got %v", sol.Labels)
	}
}

func TestEnergyHistoryMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(t, rng, 10, 3)
	sol, err := Solve(g, Options{MaxIterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sol.EnergyHistory); i++ {
		if sol.EnergyHistory[i] > sol.EnergyHistory[i-1]+1e-12 {
			t.Fatalf("best-energy history not monotone at %d: %v", i, sol.EnergyHistory)
		}
	}
	if len(sol.EnergyHistory) != sol.Iterations {
		t.Errorf("history length %d != iterations %d", len(sol.EnergyHistory), sol.Iterations)
	}
}

func benchmarkSolve(b *testing.B, labels int) {
	g := mrftest.BenchGraph(b, 400, labels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(g, Options{MaxIterations: 10, Patience: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkMessagePassK4(b *testing.B) { benchmarkSolve(b, 4) }
func BenchmarkMessagePassK6(b *testing.B) { benchmarkSolve(b, 6) }

// Package trws implements the sequential tree-reweighted message passing
// algorithm (TRW-S) of Kolmogorov, the solver the paper uses to minimise the
// diversification MRF (Section V-C).
//
// The implementation follows the min-sum sequential schedule: nodes are
// processed in a fixed order; a forward pass sends messages to
// higher-indexed neighbours and a backward pass to lower-indexed neighbours,
// with per-node weights γ_i = 1 / max(#forward neighbours, #backward
// neighbours).  A primal labeling is decoded after every iteration and the
// best one seen is returned.
package trws

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"netdiversity/internal/mrf"
)

// Options configures the solver.
type Options struct {
	// MaxIterations bounds the number of forward+backward sweeps.
	// Default 100.
	MaxIterations int
	// Tolerance stops the solver once the best energy improves by less than
	// this amount over Patience consecutive iterations.  Default 1e-6.
	Tolerance float64
	// Patience is the number of non-improving iterations tolerated before
	// declaring convergence.  Default 5.
	Patience int
	// Workers sets the number of goroutines used to compute outgoing
	// messages of a node in parallel.  Values <= 1 run serially.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
	if o.Patience <= 0 {
		o.Patience = 5
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// ErrNilGraph is returned when Solve is called with a nil graph.
var ErrNilGraph = errors.New("trws: nil graph")

// Solve minimises the MRF energy with TRW-S and returns the best labeling
// found.
func Solve(g *mrf.Graph, opts Options) (mrf.Solution, error) {
	return SolveContext(context.Background(), g, opts)
}

// SolveContext is Solve with cancellation: the solver checks the context
// between iterations and returns the best solution found so far together
// with the context error when cancelled.
func SolveContext(ctx context.Context, g *mrf.Graph, opts Options) (mrf.Solution, error) {
	if g == nil {
		return mrf.Solution{}, ErrNilGraph
	}
	if err := g.Validate(); err != nil {
		return mrf.Solution{}, fmt.Errorf("trws: %w", err)
	}
	opts = opts.withDefaults()
	s := newState(g, opts)

	best := g.GreedyLabeling()
	bestEnergy := g.MustEnergy(best)
	history := make([]float64, 0, opts.MaxIterations)
	noImprove := 0
	converged := false
	iterations := 0

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return s.solution(best, bestEnergy, history, iterations, false), err
		}
		s.forwardPass()
		s.backwardPass()
		labels := s.decode()
		energy := g.MustEnergy(labels)
		iterations = iter + 1
		if energy < bestEnergy-opts.Tolerance {
			bestEnergy = energy
			copy(best, labels)
			noImprove = 0
		} else {
			noImprove++
		}
		history = append(history, bestEnergy)
		if noImprove >= opts.Patience {
			converged = true
			break
		}
	}
	return s.solution(best, bestEnergy, history, iterations, converged), nil
}

// state holds the message-passing workspace.
type state struct {
	g    *mrf.Graph
	opts Options

	n      int
	counts []int
	// incident[i] lists the edges incident to node i with a flag telling
	// whether i is the U endpoint.
	incident [][]halfEdge
	// msg[e][0] is the message into the U endpoint of edge e, msg[e][1] the
	// message into the V endpoint.
	msg [][2][]float64
	// gamma[i] = 1 / max(#forward, #backward) neighbours of node i.
	gamma []float64
	// scratch buffers reused across passes.
	aggBuf []float64
}

type halfEdge struct {
	edge int
	isU  bool
	// other is the node at the opposite endpoint.
	other int
}

func newState(g *mrf.Graph, opts Options) *state {
	n := g.NumNodes()
	s := &state{
		g:        g,
		opts:     opts,
		n:        n,
		counts:   make([]int, n),
		incident: make([][]halfEdge, n),
		msg:      make([][2][]float64, g.NumEdges()),
		gamma:    make([]float64, n),
	}
	maxLabels := 0
	for i := 0; i < n; i++ {
		s.counts[i] = g.NumLabels(i)
		if s.counts[i] > maxLabels {
			maxLabels = s.counts[i]
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(e)
		s.msg[e][0] = make([]float64, s.counts[edge.U])
		s.msg[e][1] = make([]float64, s.counts[edge.V])
		s.incident[edge.U] = append(s.incident[edge.U], halfEdge{edge: e, isU: true, other: edge.V})
		s.incident[edge.V] = append(s.incident[edge.V], halfEdge{edge: e, isU: false, other: edge.U})
	}
	for i := 0; i < n; i++ {
		fwd, bwd := 0, 0
		for _, he := range s.incident[i] {
			if he.other > i {
				fwd++
			} else {
				bwd++
			}
		}
		d := fwd
		if bwd > d {
			d = bwd
		}
		if d == 0 {
			d = 1
		}
		s.gamma[i] = 1 / float64(d)
	}
	s.aggBuf = make([]float64, maxLabels)
	return s
}

// aggregate computes a_i(x) = φ_i(x) + Σ_j m_{j→i}(x) into dst.
func (s *state) aggregate(node int, dst []float64) {
	copy(dst, s.g.UnaryRow(node))
	for _, he := range s.incident[node] {
		in := s.inMessage(he)
		for x := range dst[:s.counts[node]] {
			dst[x] += in[x]
		}
	}
}

// inMessage returns the message arriving at the node identified by the half
// edge (i.e. the message stored for that endpoint).
func (s *state) inMessage(he halfEdge) []float64 {
	if he.isU {
		return s.msg[he.edge][0]
	}
	return s.msg[he.edge][1]
}

// outMessage returns the slot for the message leaving the node of the half
// edge toward the opposite endpoint.
func (s *state) outMessage(he halfEdge) []float64 {
	if he.isU {
		return s.msg[he.edge][1]
	}
	return s.msg[he.edge][0]
}

// updateMessage recomputes the message from `node` to `he.other`:
//
//	m(x_other) = min_x [ γ_node·a(x) − m_{other→node}(x) + ψ(x, x_other) ]
//
// normalised to have minimum zero.
func (s *state) updateMessage(node int, he halfEdge, agg []float64) {
	gamma := s.gamma[node]
	in := s.inMessage(he)
	out := s.outMessage(he)
	edge := s.g.Edge(he.edge)
	kOther := len(out)
	for xo := 0; xo < kOther; xo++ {
		out[xo] = math.Inf(1)
	}
	for x := 0; x < s.counts[node]; x++ {
		base := gamma*agg[x] - in[x]
		for xo := 0; xo < kOther; xo++ {
			var c float64
			if he.isU {
				c = edge.Cost[x][xo]
			} else {
				c = edge.Cost[xo][x]
			}
			if v := base + c; v < out[xo] {
				out[xo] = v
			}
		}
	}
	// Normalise to keep message magnitudes bounded.
	m := out[0]
	for _, v := range out[1:] {
		if v < m {
			m = v
		}
	}
	for i := range out {
		out[i] -= m
	}
}

func (s *state) pass(forward bool) {
	agg := s.aggBuf
	for idx := 0; idx < s.n; idx++ {
		node := idx
		if !forward {
			node = s.n - 1 - idx
		}
		s.aggregate(node, agg)
		var targets []halfEdge
		for _, he := range s.incident[node] {
			if (forward && he.other > node) || (!forward && he.other < node) {
				targets = append(targets, he)
			}
		}
		if len(targets) == 0 {
			continue
		}
		if s.opts.Workers > 1 && len(targets) > 1 {
			s.updateParallel(node, targets, agg)
			continue
		}
		for _, he := range targets {
			s.updateMessage(node, he, agg)
		}
	}
}

func (s *state) updateParallel(node int, targets []halfEdge, agg []float64) {
	workers := s.opts.Workers
	if workers > len(targets) {
		workers = len(targets)
	}
	var wg sync.WaitGroup
	chunk := (len(targets) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(targets) {
			hi = len(targets)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []halfEdge) {
			defer wg.Done()
			for _, he := range part {
				s.updateMessage(node, he, agg)
			}
		}(targets[lo:hi])
	}
	wg.Wait()
}

func (s *state) forwardPass()  { s.pass(true) }
func (s *state) backwardPass() { s.pass(false) }

// decode extracts a primal labeling: nodes are visited in order and each
// picks the label minimising its unary cost plus the pairwise cost toward
// already-fixed lower neighbours plus the incoming messages from
// higher-indexed neighbours.
func (s *state) decode() []int {
	labels := make([]int, s.n)
	cost := make([]float64, 0, 64)
	for node := 0; node < s.n; node++ {
		k := s.counts[node]
		cost = cost[:0]
		cost = append(cost, s.g.UnaryRow(node)...)
		for _, he := range s.incident[node] {
			if he.other < node {
				edge := s.g.Edge(he.edge)
				fixed := labels[he.other]
				for x := 0; x < k; x++ {
					if he.isU {
						cost[x] += edge.Cost[x][fixed]
					} else {
						cost[x] += edge.Cost[fixed][x]
					}
				}
			} else {
				in := s.inMessage(he)
				for x := 0; x < k; x++ {
					cost[x] += in[x]
				}
			}
		}
		best, bestV := 0, math.Inf(1)
		for x := 0; x < k; x++ {
			if cost[x] < bestV {
				best, bestV = x, cost[x]
			}
		}
		labels[node] = best
	}
	return labels
}

func (s *state) solution(labels []int, energy float64, history []float64, iters int, converged bool) mrf.Solution {
	return mrf.Solution{
		Labels:        append([]int(nil), labels...),
		Energy:        energy,
		LowerBound:    s.g.TrivialLowerBound(),
		Iterations:    iters,
		Converged:     converged,
		EnergyHistory: append([]float64(nil), history...),
	}
}

// Package trws implements the sequential tree-reweighted message passing
// algorithm (TRW-S) of Kolmogorov, the solver the paper uses to minimise the
// diversification MRF (Section V-C).
//
// The implementation follows the min-sum sequential schedule: nodes are
// processed in a fixed order; a forward pass sends messages to
// higher-indexed neighbours and a backward pass to lower-indexed neighbours,
// with per-node weights γ_i = 1 / max(#forward neighbours, #backward
// neighbours).  A primal labeling is decoded after every iteration; the
// best-labeling tracking, convergence rule and cancellation live in the
// shared solve driver — this package contains only the message kernel.
package trws

import (
	"context"
	"fmt"
	"math"
	"sync"

	"netdiversity/internal/mrf"
	"netdiversity/internal/solve"
)

func init() {
	solve.Register("trws", func() solve.Kernel { return &Kernel{} })
}

// Options configures the solver (thin compatibility wrapper over the unified
// solve.Options).
type Options struct {
	// MaxIterations bounds the number of forward+backward sweeps.
	// Default 100.
	MaxIterations int
	// Tolerance stops the solver once the best energy improves by less than
	// this amount over Patience consecutive iterations.  Default 1e-6.
	Tolerance float64
	// Patience is the number of non-improving iterations tolerated before
	// declaring convergence.  Default 5.
	Patience int
	// Workers sets the number of goroutines used to compute outgoing
	// messages of a node in parallel.  Values <= 1 run serially.
	Workers int
}

// ErrNilGraph is returned when Solve is called with a nil graph.
var ErrNilGraph = solve.ErrNilGraph

// Solve minimises the MRF energy with TRW-S and returns the best labeling
// found.
func Solve(g *mrf.Graph, opts Options) (mrf.Solution, error) {
	return SolveContext(context.Background(), g, opts)
}

// SolveContext is Solve with cancellation: the driver checks the context
// between iterations and returns the best solution found so far together
// with the context error when cancelled.
func SolveContext(ctx context.Context, g *mrf.Graph, opts Options) (mrf.Solution, error) {
	return solve.Run(ctx, g, solve.Options{
		MaxIterations: opts.MaxIterations,
		Tolerance:     opts.Tolerance,
		Patience:      opts.Patience,
		Workers:       opts.Workers,
	}, &Kernel{})
}

// Kernel is the TRW-S message-passing kernel.
type Kernel struct {
	g    *mrf.Graph
	opts solve.Options

	n      int
	counts []int
	inc    solve.Incidence
	// Flat message storage: msg[msgU[e]:] is the message into the U endpoint
	// of edge e, msg[msgV[e]:] the message into the V endpoint.
	msg  []float64
	msgU []int
	msgV []int
	// gamma[i] = 1 / max(#forward, #backward) neighbours of node i.
	gamma []float64
	// scratch buffer reused across passes.
	aggBuf []float64

	// Warm-start state (see WarmStart): passes visit only active nodes, the
	// MRF is conditioned on the prior labels of the inactive boundary, and
	// the active set grows wherever the decoded labeling diverges from the
	// prior.
	warm   bool
	prior  []int
	active []bool

	iter int
}

// Init builds the flat workspace and touches the graph's lazy caches
// (incidence CSR, transposed matrices) so Step can fan out safely.
func (k *Kernel) Init(g *mrf.Graph, opts solve.Options) error {
	k.g = g
	k.opts = opts
	k.n = g.NumNodes()
	k.iter = 0
	k.counts = make([]int, k.n)
	for i := 0; i < k.n; i++ {
		k.counts[i] = g.NumLabels(i)
	}

	var total int
	k.msgU, k.msgV, total = solve.MessageOffsets(g)
	k.msg = make([]float64, total)
	k.inc = solve.BuildIncidence(g)

	k.gamma = make([]float64, k.n)
	for i := 0; i < k.n; i++ {
		fwd, bwd := 0, 0
		for _, he := range k.incident(i) {
			if int(he.Other) > i {
				fwd++
			} else {
				bwd++
			}
		}
		d := fwd
		if bwd > d {
			d = bwd
		}
		if d == 0 {
			d = 1
		}
		k.gamma[i] = 1 / float64(d)
	}
	k.aggBuf = make([]float64, g.MaxLabels())
	k.warm = false
	k.prior = nil
	k.active = nil
	return nil
}

// WarmStart switches the kernel to incremental mode (solve.WarmKernel).
// Message passing runs only over the active (dirty) region; every inactive
// node is treated as fixed at its prior label, so the active region solves
// the original MRF conditioned on the unchanged boundary.  When a decoded
// label diverges from the prior, the node's neighbours activate and the
// frontier grows — untouched regions are never swept.
func (k *Kernel) WarmStart(labels []int, dirty []bool) error {
	if len(labels) != k.n || len(dirty) != k.n {
		return fmt.Errorf("trws: warm start needs %d labels and dirty flags", k.n)
	}
	k.prior = append([]int(nil), labels...)
	k.active = append([]bool(nil), dirty...)
	k.warm = true
	return nil
}

// Step runs one forward+backward sweep and decodes a primal labeling.
func (k *Kernel) Step() solve.Step {
	k.pass(true)
	k.pass(false)
	k.iter++
	labels := k.decode()
	if k.warm {
		// Grow the dirty frontier where the decode moved off the prior
		// labeling, then absorb the decode as the new conditioning boundary.
		for node := 0; node < k.n; node++ {
			if k.active[node] && labels[node] != k.prior[node] {
				for _, he := range k.incident(node) {
					k.active[he.Other] = true
				}
			}
		}
		copy(k.prior, labels)
	}
	return solve.Step{
		Labels:    labels,
		Exhausted: k.iter >= k.opts.MaxIterations,
	}
}

func (k *Kernel) incident(node int) []solve.HalfEdge {
	return k.inc.Of(node)
}

// inMessage returns the message arriving at the node identified by the half
// edge (i.e. the message stored for that endpoint).
func (k *Kernel) inMessage(he solve.HalfEdge) []float64 {
	e := int(he.Edge)
	if he.IsU {
		return k.msg[k.msgU[e] : k.msgU[e]+k.counts[k.edgeU(e)]]
	}
	return k.msg[k.msgV[e] : k.msgV[e]+k.counts[k.edgeV(e)]]
}

// outMessage returns the slot for the message leaving the node of the half
// edge toward the opposite endpoint.
func (k *Kernel) outMessage(he solve.HalfEdge) []float64 {
	e := int(he.Edge)
	if he.IsU {
		return k.msg[k.msgV[e] : k.msgV[e]+k.counts[k.edgeV(e)]]
	}
	return k.msg[k.msgU[e] : k.msgU[e]+k.counts[k.edgeU(e)]]
}

func (k *Kernel) edgeU(e int) int { u, _ := k.g.EdgeEndpoints(e); return u }
func (k *Kernel) edgeV(e int) int { _, v := k.g.EdgeEndpoints(e); return v }

// aggregate computes a_i(x) = φ_i(x) + Σ_j m_{j→i}(x) into dst.  In warm
// mode the message from an inactive neighbour is replaced by the pairwise
// cost row at that neighbour's frozen prior label — the MRF conditioned on
// the unchanged boundary.
func (k *Kernel) aggregate(node int, dst []float64) {
	copy(dst, k.g.UnaryView(node))
	kn := k.counts[node]
	for _, he := range k.incident(node) {
		if k.warm && !k.active[he.Other] {
			row := k.boundaryRow(he)
			for x := 0; x < kn; x++ {
				dst[x] += row[x]
			}
			continue
		}
		in := k.inMessage(he)
		for x := 0; x < kn; x++ {
			dst[x] += in[x]
		}
	}
}

// boundaryRow returns the pairwise cost toward the half edge's node for the
// opposite endpoint frozen at its prior label.
func (k *Kernel) boundaryRow(he solve.HalfEdge) []float64 {
	fixed := k.prior[he.Other]
	if he.IsU {
		// cost[x][fixed] over this node's labels x = row of the transpose.
		return k.g.EdgeMatT(int(he.Edge)).Row(fixed)
	}
	return k.g.EdgeMat(int(he.Edge)).Row(fixed)
}

// updateMessage recomputes the message from `node` to `he.Other`:
//
//	m(x_other) = min_x [ γ_node·a(x) − m_{other→node}(x) + ψ(x, x_other) ]
//
// normalised to have minimum zero.  Costs are read through the edge matrix
// oriented so the inner loop walks a contiguous row.
func (k *Kernel) updateMessage(node int, he solve.HalfEdge, agg []float64) {
	gamma := k.gamma[node]
	in := k.inMessage(he)
	out := k.outMessage(he)
	var mat *mrf.Matrix
	if he.IsU {
		mat = k.g.EdgeMat(int(he.Edge)) // rows indexed by node's labels
	} else {
		mat = k.g.EdgeMatT(int(he.Edge))
	}
	kn := k.counts[node]
	kOther := len(out)
	if kOther == 4 {
		// Small-K fast path for the products_per_service default: the four
		// running minima live in registers across the whole label scan and the
		// explicit reslice eliminates the row bounds checks, instead of a
		// read-modify-write of out[xo] per (x, xo) pair.  Normalisation is
		// fused into the final store.
		o0, o1, o2, o3 := math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)
		for x := 0; x < kn; x++ {
			base := gamma*agg[x] - in[x]
			row := mat.Row(x)[:4:4]
			if v := base + row[0]; v < o0 {
				o0 = v
			}
			if v := base + row[1]; v < o1 {
				o1 = v
			}
			if v := base + row[2]; v < o2 {
				o2 = v
			}
			if v := base + row[3]; v < o3 {
				o3 = v
			}
		}
		m := min(min(o0, o1), min(o2, o3))
		out[0], out[1], out[2], out[3] = o0-m, o1-m, o2-m, o3-m
		return
	}
	for xo := 0; xo < kOther; xo++ {
		out[xo] = math.Inf(1)
	}
	for x := 0; x < kn; x++ {
		base := gamma*agg[x] - in[x]
		row := mat.Row(x)
		for xo := 0; xo < kOther; xo++ {
			if v := base + row[xo]; v < out[xo] {
				out[xo] = v
			}
		}
	}
	// Normalise to keep message magnitudes bounded.
	m := out[0]
	for _, v := range out[1:] {
		if v < m {
			m = v
		}
	}
	for i := range out {
		out[i] -= m
	}
}

func (k *Kernel) pass(forward bool) {
	agg := k.aggBuf
	var targets []solve.HalfEdge
	for idx := 0; idx < k.n; idx++ {
		node := idx
		if !forward {
			node = k.n - 1 - idx
		}
		if k.warm && !k.active[node] {
			continue
		}
		k.aggregate(node, agg)
		targets = targets[:0]
		for _, he := range k.incident(node) {
			if k.warm && !k.active[he.Other] {
				continue // frozen boundary: it reads conditioning rows, not messages
			}
			if (forward && int(he.Other) > node) || (!forward && int(he.Other) < node) {
				targets = append(targets, he)
			}
		}
		if len(targets) == 0 {
			continue
		}
		if k.opts.Workers > 1 && len(targets) > 1 {
			k.updateParallel(node, targets, agg)
			continue
		}
		for _, he := range targets {
			k.updateMessage(node, he, agg)
		}
	}
}

func (k *Kernel) updateParallel(node int, targets []solve.HalfEdge, agg []float64) {
	workers := k.opts.Workers
	if workers > len(targets) {
		workers = len(targets)
	}
	var wg sync.WaitGroup
	chunk := (len(targets) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(targets) {
			hi = len(targets)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []solve.HalfEdge) {
			defer wg.Done()
			for _, he := range part {
				k.updateMessage(node, he, agg)
			}
		}(targets[lo:hi])
	}
	wg.Wait()
}

// decode extracts a primal labeling: nodes are visited in order and each
// picks the label minimising its unary cost plus the pairwise cost toward
// already-fixed lower neighbours plus the incoming messages from
// higher-indexed neighbours.  In warm mode inactive nodes keep their prior
// label and active nodes condition on the frozen boundary.
func (k *Kernel) decode() []int {
	labels := make([]int, k.n)
	if k.warm {
		copy(labels, k.prior)
	}
	cost := make([]float64, 0, 64)
	for node := 0; node < k.n; node++ {
		if k.warm && !k.active[node] {
			continue
		}
		kn := k.counts[node]
		cost = cost[:0]
		cost = append(cost, k.g.UnaryView(node)...)
		for _, he := range k.incident(node) {
			if int(he.Other) < node || (k.warm && !k.active[he.Other]) {
				// Lower neighbours are already decoded this pass; inactive
				// neighbours are frozen at their prior label (labels[] holds
				// both).  Orient the matrix so the fixed label picks a
				// contiguous row.
				fixed := labels[he.Other]
				var row []float64
				if he.IsU {
					row = k.g.EdgeMatT(int(he.Edge)).Row(fixed)
				} else {
					row = k.g.EdgeMat(int(he.Edge)).Row(fixed)
				}
				for x := 0; x < kn; x++ {
					cost[x] += row[x]
				}
			} else {
				in := k.inMessage(he)
				for x := 0; x < kn; x++ {
					cost[x] += in[x]
				}
			}
		}
		best, bestV := 0, math.Inf(1)
		for x := 0; x < kn; x++ {
			if cost[x] < bestV {
				best, bestV = x, cost[x]
			}
		}
		labels[node] = best
	}
	return labels
}

module netdiversity

go 1.24
